"""Pipe-it baseline: CPU-only Big/Small pipelining with local search.

Pipe-it (Wang et al., TCAD 2020) pipelines DNN inference across the
Big and Small CPU clusters.  Following the paper's adaptation, we use
the whole four-Big / four-Small clusters as the two pipeline stages
("we adapt the core partitioning strategy for heterogeneous DNNs and
select the fastest core combination of four Big and four Small cores to
avoid cache incoherence across the CPU clusters").

Faithful to the original, the per-model split point is found by *local
search* (hill climbing on the split index) rather than the Hetero2Pipe
DP, and there is no contention mitigation or vertical re-balancing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.plan import PipelinePlan, StageAssignment
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import ModelProfile, SocProfiler


def local_search_split(
    profile: ModelProfile, soc: SocSpec
) -> Tuple[Optional[int], float]:
    """Hill-climb the Big/Small split point of one model.

    Returns ``(cut, makespan)`` where layers ``[0, cut-1]`` run on the
    Big cluster and ``[cut, n-1]`` on the Small cluster; ``cut`` may be
    ``n`` (everything on Big — the usual outcome given the ~5x cluster
    speed gap) and is never 0 (Pipe-it always anchors on the Big cores).
    """
    big, small = soc.cpu_big, soc.cpu_small
    n = profile.model.num_layers

    def makespan_ms(cut: int) -> float:
        if cut >= n:
            return profile.exec_ms(big, 0, n - 1)
        big_time = profile.slice_cost_ms(big, 0, cut - 1, small)
        small_time = profile.exec_ms(small, cut, n - 1)
        return max(big_time, small_time)

    cut = n  # start from all-on-Big, walk the split left while improving
    best = makespan_ms(cut)
    while cut > 1:
        candidate = makespan_ms(cut - 1)
        if candidate >= best:
            break
        best = candidate
        cut -= 1
    return (None if cut >= n else cut), best


def plan_pipe_it(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: SocProfiler | None = None,
) -> PipelinePlan:
    """Build the Pipe-it two-stage (Big, Small) pipeline plan.

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    processors = (soc.cpu_big, soc.cpu_small)
    assignments: List[StageAssignment] = []
    for model in models:
        profile = profiler.profile(model)
        cut, _ = local_search_split(profile, soc)
        n = model.num_layers
        if cut is None:
            slices: List[Optional[Tuple[int, int]]] = [(0, n - 1), None]
        else:
            slices = [(0, cut - 1), (cut, n - 1)]
        assignments.append(StageAssignment(profile=profile, slices=slices))
    return PipelinePlan(soc=soc, processors=processors, assignments=assignments)
