"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..util import approx_eq


@dataclass(frozen=True)
class LinearFit:
    """Ordinary least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit a straight line and report R^2 (Fig. 12 / Fig. 13 analyses).

    Raises:
        ValueError: with fewer than two points or zero x-variance.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if x.shape[0] < 2:
        raise ValueError("need at least two points for a line")
    x_var = float(np.var(x))
    if approx_eq(x_var, 0.0):
        raise ValueError("x values are constant; slope undefined")
    slope = float(np.cov(x, y, bias=True)[0, 1] / x_var)
    intercept = float(y.mean() - slope * x.mean())
    residuals = y - (slope * x + intercept)
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = (
        1.0 if approx_eq(total, 0.0) else 1.0 - float(np.sum(residuals**2)) / total
    )
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for speedup ratios.

    Raises:
        ValueError: on empty input or non-positive entries.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def summarize(values: Sequence[float]) -> dict:
    """Mean / median / min / max / std summary for report tables."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize empty sequence")
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "std": float(arr.std()),
    }
