"""Horizontal model partitioning (P1) — Algorithm 1 of the paper.

For one model and an *ordered* pipeline of K heterogeneous processors,
find the K-way contiguous layer partition minimizing the makespan
(the maximum per-stage time, Eq. 4).  The DP exploits the optimal
sub-structure

    S*(j, k) = min_i max{ S*(i-1, k-1), T_k(i, j) }

with boundary conditions for k = 1.  Two solvers are provided:

* :func:`min_makespan_partition` — the O(n^2 K) exact DP.
* :func:`min_makespan_partition_fast` — the O(n K log n) variant using
  Property 2 (monotonicity of ``T_k(i, j)`` in both endpoints): for a
  fixed stage the optimum split is at the crossing of the non-decreasing
  ``S*(i-1, k-1)`` and the non-increasing ``T_k(i, j)``, found by binary
  search.  (The paper reaches O(nK) with a rolling pointer; the binary
  search keeps the same asymptotics up to the log factor with simpler,
  verifiable code.)

  Property 2 holds for pure execution time but *not* once boundary-copy
  cost is folded in: extending a slice past a pooling layer shrinks the
  copied tensor, so stage cost is not monotone in the slice end, and
  ``S*(., k-1)`` loses monotonicity with it.  The fast solver is
  therefore only used with copy-free costs; :func:`partition_model`
  defaults to the exact DP (n <= ~50 layers makes O(n^2 K) negligible).

Stages may be *empty*: the NPU's limited operator set means a model such
as BERT, whose first layer the NPU cannot run, contributes a zero-length
slice to the NPU stage and falls back to the next processor — exactly the
operator-fallback behaviour of Sec. IV.  Infeasible placements surface as
``inf`` cost and the DP routes around them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.processor import ProcessorSpec
from ..profiling.profiler import INFEASIBLE, ModelProfile

#: Cost callback signature: ``cost(stage_index, start_layer, end_layer)``
#: for the inclusive layer slice [start, end] on stage ``stage_index``.
CostFn = Callable[[int, int, int], float]


@dataclass(frozen=True)
class PartitionResult:
    """A K-way partition of one model onto an ordered processor pipeline.

    Attributes:
        slices: One entry per stage; ``(start, end)`` inclusive layer
            bounds, or ``None`` for an empty stage.
        stage_times_ms: Per-stage cost (execution + boundary copy); 0.0
            for empty stages.
        makespan_ms: ``max(stage_times_ms)`` — the pipeline interval this
            model sustains.
    """

    slices: Tuple[Optional[Tuple[int, int]], ...]
    stage_times_ms: Tuple[float, ...]
    makespan_ms: float

    @property
    def num_stages(self) -> int:
        return len(self.slices)

    def occupied_stages(self) -> Tuple[int, ...]:
        return tuple(k for k, s in enumerate(self.slices) if s is not None)

    def total_time_ms(self) -> float:
        """Sum of stage times — the model's end-to-end pipeline latency."""
        return sum(self.stage_times_ms)


def min_makespan_partition(
    num_layers: int, num_stages: int, cost: CostFn
) -> Tuple[float, List[Optional[Tuple[int, int]]]]:
    """Reference O(n^2 K) DP for the min-max contiguous partition.

    Args:
        num_layers: n, the layer count.
        num_stages: K, the pipeline depth (stages may end up empty).
        cost: Slice-cost callback; return ``inf`` for infeasible slices.

    Returns:
        ``(makespan, slices)`` with ``slices`` as in :class:`PartitionResult`.

    Raises:
        ValueError: if no feasible partition exists (e.g. a layer no
            stage supports) or the sizes are non-positive.
    """
    if num_layers <= 0 or num_stages <= 0:
        raise ValueError("num_layers and num_stages must be positive")

    inf = math.inf
    # dp[k][j]: best makespan placing the first j layers on the first k
    # stages.  split[k][j]: the chosen j' (layers before this stage).
    dp = [[inf] * (num_layers + 1) for _ in range(num_stages + 1)]
    split = [[-1] * (num_layers + 1) for _ in range(num_stages + 1)]
    dp[0][0] = 0.0

    for k in range(1, num_stages + 1):
        for j in range(num_layers + 1):
            best, best_split = inf, -1
            for s in range(j + 1):
                prev = dp[k - 1][s]
                if math.isinf(prev):
                    continue
                here = 0.0 if s == j else cost(k - 1, s, j - 1)
                candidate = max(prev, here)
                if candidate < best:
                    best, best_split = candidate, s
            dp[k][j] = best
            split[k][j] = best_split

    if math.isinf(dp[num_stages][num_layers]):
        raise ValueError("no feasible partition: some layer is unplaceable")

    slices = _backtrack(split, num_layers, num_stages)
    return dp[num_stages][num_layers], slices


def min_makespan_partition_fast(
    num_layers: int, num_stages: int, cost: CostFn
) -> Tuple[float, List[Optional[Tuple[int, int]]]]:
    """Monotonicity-accelerated DP (Property 2), O(n K log n).

    Produces the same makespan as :func:`min_makespan_partition` whenever
    the cost function is monotone (slice cost non-decreasing as the slice
    grows) and feasibility is prefix-closed per stage.  Infeasible
    (infinite) costs are handled by treating them as larger than any
    finite value, which preserves the monotone structure because an NPU
    slice stays infeasible once it contains an unsupported layer.
    """
    if num_layers <= 0 or num_stages <= 0:
        raise ValueError("num_layers and num_stages must be positive")

    inf = math.inf
    dp = [[inf] * (num_layers + 1) for _ in range(num_stages + 1)]
    split = [[-1] * (num_layers + 1) for _ in range(num_stages + 1)]
    dp[0][0] = 0.0

    for k in range(1, num_stages + 1):
        for j in range(num_layers + 1):
            # Optimal split s* minimizes max(dp[k-1][s], cost(s, j-1)).
            # dp[k-1][s] is non-decreasing in s (more layers, same
            # stages); cost(s, j-1) is non-increasing in s (shorter
            # slice).  Binary-search the crossing, then check both sides.
            lo, hi = 0, j
            while lo < hi:
                mid = (lo + hi) // 2
                prev = dp[k - 1][mid]
                here = 0.0 if mid == j else cost(k - 1, mid, j - 1)
                if prev >= here:
                    hi = mid
                else:
                    lo = mid + 1
            best, best_split = inf, -1
            for s in {max(0, lo - 1), lo, min(j, lo + 1)}:
                prev = dp[k - 1][s]
                if math.isinf(prev):
                    continue
                here = 0.0 if s == j else cost(k - 1, s, j - 1)
                candidate = max(prev, here)
                if candidate < best or (candidate == best and s < best_split):
                    best, best_split = candidate, s
            dp[k][j] = best
            split[k][j] = best_split

    if math.isinf(dp[num_stages][num_layers]):
        raise ValueError("no feasible partition: some layer is unplaceable")

    slices = _backtrack(split, num_layers, num_stages)
    return dp[num_stages][num_layers], slices


def _backtrack(
    split: List[List[int]], num_layers: int, num_stages: int
) -> List[Optional[Tuple[int, int]]]:
    slices: List[Optional[Tuple[int, int]]] = [None] * num_stages
    j = num_layers
    for k in range(num_stages, 0, -1):
        s = split[k][j]
        if s < j:
            slices[k - 1] = (s, j - 1)
        j = s
    return slices


def make_slice_cost(
    profile: ModelProfile,
    processors: Sequence[ProcessorSpec],
    include_copy: bool = True,
) -> CostFn:
    """Slice-cost callback combining ``T^e`` and ``T^c`` of Eq. 2.

    Stage ``k``'s cost for slice [i, j] is its solo execution time on
    ``processors[k]`` plus, when ``include_copy``, the boundary-tensor
    copy toward the next stage's processor (the final stage has no
    hand-off).  Copy-free costs satisfy Property 2 and may be used with
    the fast solver.
    """

    def cost(stage: int, start: int, end: int) -> float:
        proc = processors[stage]
        if not include_copy:
            return profile.exec_ms(proc, start, end)
        next_proc = processors[stage + 1] if stage + 1 < len(processors) else None
        return profile.slice_cost_ms(proc, start, end, next_proc)

    return cost


def partition_model(
    profile: ModelProfile,
    processors: Sequence[ProcessorSpec],
    fast: bool = False,
) -> PartitionResult:
    """Partition one model across an ordered processor pipeline.

    Args:
        profile: Solo profile of the model on the target SoC.
        processors: Pipeline stages in execution order (the paper orders
            them by descending processing power).
        fast: Use the monotonicity-accelerated solver.  Only exact when
            the cost is monotone, which boundary copies break; the
            default exact DP is recommended (and cheap at mobile model
            sizes).

    Returns:
        The optimal :class:`PartitionResult`.

    Raises:
        ValueError: if no stage can execute some layer.
    """
    if not processors:
        raise ValueError("need at least one processor")
    base_cost = make_slice_cost(profile, processors)
    cost = base_cost
    cells = 0
    if obs.enabled():

        def counting_cost(stage: int, start: int, end: int) -> float:
            nonlocal cells
            cells += 1
            return base_cost(stage, start, end)

        cost = counting_cost
    with obs.span(
        "plan.partition",
        model=profile.model.name,
        layers=profile.model.num_layers,
        stages=len(processors),
        fast=fast,
    ) as span:
        solver = min_makespan_partition_fast if fast else min_makespan_partition
        makespan, slices = solver(profile.model.num_layers, len(processors), cost)
        # Stage times are reporting, not DP work: price them through the
        # raw cost so ``dp_cells_evaluated`` counts only solver-issued
        # slice evaluations.
        stage_times = tuple(
            0.0 if s is None else base_cost(k, s[0], s[1])
            for k, s in enumerate(slices)
        )
        if cells:
            obs.add("dp_cells_evaluated", cells)
            span.set(dp_cells=cells, makespan_ms=makespan)
    return PartitionResult(
        slices=tuple(slices),
        stage_times_ms=stage_times,
        makespan_ms=makespan,
    )
