"""Fig. 7 benchmark: overall latency/throughput comparison on 3 SoCs.

This is the paper's headline experiment.  The full paper sweep uses 100
random combinations per platform; the benchmark default (15) keeps the
regeneration under a minute while preserving every reported shape —
pass a larger count through :func:`repro.experiments.fig7_overall.run`
to match the paper exactly.
"""

from repro.experiments import fig7_overall
from repro.experiments.common import geomean

NUM_COMBINATIONS = 15


def test_bench_fig7_overall(run_once):
    summaries = run_once(
        fig7_overall.run, num_combinations=NUM_COMBINATIONS
    )
    print("\n" + fig7_overall.render(summaries))

    by_name = {s.soc_name: s for s in summaries}
    kirin = by_name["kirin990"]

    # Headline: large speedups over vanilla MNN, biggest on Kirin 990
    # thanks to the NPU (paper: 4.2x average, up to 8.8x).
    gm, hi, _ = kirin.speedup_over("mnn")
    assert gm > 2.5
    assert hi > 6.0

    # Pipe-it trails clearly (paper: 2x average, up to 3.7x).
    gm_pipe, _, _ = kirin.speedup_over("pipe_it")
    assert gm_pipe > 2.0

    # Band is the close competitor (paper: ~5 % average gain).
    gm_band, _, lo_band = kirin.speedup_over("band")
    assert 0.95 < gm_band < 1.5
    assert lo_band < 1.0  # Band wins occasionally, as the paper admits

    # The No-C/T ablation always trails the full planner.
    gm_noct, _, lo_noct = kirin.speedup_over("h2p_no_ct")
    assert gm_noct >= 1.0
    assert lo_noct >= 0.999

    # Snapdragons (no NPU) still gain but less than Kirin.
    for soc_name in ("snapdragon778g", "snapdragon870"):
        gm_soc, _, _ = by_name[soc_name].speedup_over("mnn")
        assert 1.5 < gm_soc < gm

    # Throughput ordering mirrors latency ordering.
    for summary in summaries:
        assert summary.mean_throughput("h2p") > summary.mean_throughput("mnn")


def test_bench_fig7_band_scatter(run_once):
    summaries = run_once(
        fig7_overall.run,
        soc_names=("kirin990",),
        num_combinations=NUM_COMBINATIONS,
    )
    scatter = summaries[0].band_scatter(fraction=0.3)
    print("\nBand-vs-H2P scatter (band_ms, h2p_ms):")
    for band, h2p in scatter:
        print(f"  {band:9.1f}  {h2p:9.1f}")
    assert len(scatter) >= 3
    # H2P's solutions show less variance than Band's (paper's point).
    bands = [b for b, _ in scatter]
    h2ps = [h for _, h in scatter]
    ratios = [b / h for b, h in scatter]
    assert geomean(ratios) > 0.9
