"""CI guard: SLO burn-rate alerts must be silent when load is healthy.

The alerting layer is only useful if it has both a low false-positive
rate and a bounded detection delay, so this guard pins both ends:

* **Clean runs** — a seeded Poisson arrival stream at a comfortably
  sustainable rate (inter-arrival and SLO deadline are *calibrated*
  from a closed-loop execution of the same plan, so the guard tracks
  the simulator instead of hard-coding latencies) across all three
  registered SoCs must fire **zero** burn alerts.
* **Overloaded control** — the same mix arriving an order of magnitude
  faster than sustainable must fire an alert within
  ``MAX_DETECTION_WINDOWS`` tumbling windows (a guard that can never
  fail guards nothing), and the alert must round-trip through the
  provenance event registry (emit → ``to_dict`` → ``event_from_dict``).

The clean runs' window/SLO telemetry is written to a JSONL artifact and
the overloaded control to a Chrome trace with the utilization /
queue-depth / burn-rate counter tracks, so a failing run can be
inspected offline.

Run directly (exit code 0/1, used by the ``slo-guard`` CI job)::

    PYTHONPATH=src python benchmarks/slo_guard.py [telemetry.jsonl [trace.json]]
"""

import sys

from repro import obs
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import write_slo_jsonl
from repro.obs.events import event_from_dict
from repro.obs.slo import SloEvaluator, SloSpec
from repro.obs.timeline import TimelineAggregator
from repro.runtime.arrivals import PoissonArrivals
from repro.runtime.engine import DiscreteEventEngine
from repro.runtime.executor import (
    execute_plan,
    plan_to_chains,
    replicate_chains,
)
from repro.runtime.tracing import write_chrome_trace

SOCS = ("kirin990", "snapdragon778g", "snapdragon870")
MODEL_MIX = ("squeezenet", "mobilenetv2", "resnet50")
REPEAT = 8
ARRIVAL_SEED = 7
OBJECTIVE = 0.9
BURN_THRESHOLD = 2.0
FAST_WINDOWS = 1
SLOW_WINDOWS = 6
#: Clean arrivals are this many times slower than back-to-back service.
CLEAN_HEADROOM = 3.0
#: The SLO deadline is this many times one closed-loop mix makespan.
DEADLINE_FACTOR = 4.0
#: The overloaded control arrives this many times faster than clean.
OVERLOAD_FACTOR = 30.0
#: The control must alert within this many windows of the run start.
MAX_DETECTION_WINDOWS = 8
DEFAULT_ARTIFACT = "slo-telemetry.jsonl"
DEFAULT_TRACE = "slo-trace.json"


def _stream_run(soc_name, interval_ms, deadline_slo_ms, window_ms):
    """One open-loop Poisson run folded through both event taps."""
    soc = get_soc(soc_name)
    models = [get_model(name) for name in MODEL_MIX]
    report = Hetero2PipePlanner(soc).plan(models)
    chains = replicate_chains(plan_to_chains(report.plan), REPEAT)
    stages = [len(chain) for chain in chains]
    names = [a.model_name for a in report.plan.assignments] * REPEAT
    specs = [
        SloSpec(name=name, deadline_ms=deadline_slo_ms, objective_frac=OBJECTIVE)
        for name in names
    ]
    engine = DiscreteEventEngine(
        soc,
        chains,
        arrivals=PoissonArrivals(interval_ms=interval_ms, seed=ARRIVAL_SEED),
        keep_events=True,
        record=False,
    )
    timeline = TimelineAggregator(
        [p.name for p in soc.processors], stages, window_ms
    )
    evaluator = SloEvaluator(
        specs,
        stages,
        window_ms,
        fast_windows=FAST_WINDOWS,
        slow_windows=SLOW_WINDOWS,
        burn_threshold=BURN_THRESHOLD,
    )
    windows = []
    cursor = 0
    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        while engine.step():
            log = engine.event_log
            for event in log[cursor:]:
                windows.extend(timeline.observe(event))
                evaluator.observe(event)
            cursor = len(log)
        for event in engine.event_log[cursor:]:
            windows.extend(timeline.observe(event))
            evaluator.observe(event)
        result = engine.result()
        windows.extend(timeline.finish(result.makespan_ms))
        evaluator.finish(result.makespan_ms)
        check = timeline.littles_law()
    return windows, evaluator, result, check, rec, names


def _calibrate(soc_name):
    """Derive (clean interval, SLO deadline, window) from a closed run."""
    soc = get_soc(soc_name)
    models = [get_model(name) for name in MODEL_MIX]
    report = Hetero2PipePlanner(soc).plan(models)
    closed = execute_plan(report.plan, record=False)
    service_ms = closed.makespan_ms / max(1, closed.num_requests)
    return (
        service_ms * CLEAN_HEADROOM,
        closed.makespan_ms * DEADLINE_FACTOR,
        closed.makespan_ms,
    )


def clean_runs(artifact):
    """Healthy Poisson load per SoC; zero alerts allowed."""
    failures = []
    all_windows = []
    all_reports = []
    all_alerts = []
    for soc_name in SOCS:
        interval_ms, deadline_ms, window_ms = _calibrate(soc_name)
        windows, evaluator, result, check, _rec, _ = _stream_run(
            soc_name, interval_ms, deadline_ms, window_ms
        )
        alerts = evaluator.alerts
        all_windows.extend(windows)
        all_reports.extend(evaluator.window_reports)
        all_alerts.extend(alerts)
        verdict = "ok"
        if alerts:
            verdict = f"{len(alerts)} false alert(s)"
            failures.append(soc_name)
        elif not check.ok:
            verdict = "littles-law self-check violated"
            failures.append(soc_name)
        elif result.num_completed != result.num_requests:
            verdict = (
                f"only {result.num_completed}/{result.num_requests} completed"
            )
            failures.append(soc_name)
        print(
            f"  {soc_name:15s}: interval {interval_ms:6.1f} ms, "
            f"deadline {deadline_ms:6.1f} ms, {len(windows)} windows, "
            f"{result.num_completed}/{result.num_requests} completed "
            f"— {verdict}"
        )
    rows = write_slo_jsonl(artifact, all_windows, all_reports, all_alerts)
    print(f"  telemetry artifact: {artifact} ({rows} rows)")
    return failures


def overloaded_control(trace_path):
    """A 30x overload must alert fast — and replay through provenance."""
    soc_name = SOCS[0]
    interval_ms, deadline_ms, window_ms = _calibrate(soc_name)
    windows, evaluator, result, _check, rec, names = _stream_run(
        soc_name, interval_ms / OVERLOAD_FACTOR, deadline_ms, window_ms
    )
    alerts = evaluator.alerts
    write_chrome_trace(
        result,
        trace_path,
        names,
        timeline_windows=windows,
        slo_reports=evaluator.window_reports,
    )
    print(f"  trace artifact: {trace_path}")
    if not alerts:
        print(f"  control ({soc_name}, {OVERLOAD_FACTOR:.0f}x): no alert")
        return False
    first = min(alert.window for alert in alerts)
    print(
        f"  control ({soc_name}, {OVERLOAD_FACTOR:.0f}x overload): "
        f"{len(alerts)} alert(s), first in window {first} "
        f"(limit {MAX_DETECTION_WINDOWS})"
    )
    if first > MAX_DETECTION_WINDOWS:
        print("  detection too slow")
        return False
    recorded = [e for e in rec.events if e.kind == "slo_burn_alert"]
    if len(recorded) != len(alerts):
        print(
            f"  provenance mismatch: {len(recorded)} recorded "
            f"vs {len(alerts)} fired"
        )
        return False
    for alert in recorded:
        if event_from_dict(alert.to_dict()) != alert:
            print(f"  alert does not replay: {alert}")
            return False
    return True


def main(argv):
    artifact = argv[1] if len(argv) > 1 else DEFAULT_ARTIFACT
    trace_path = argv[2] if len(argv) > 2 else DEFAULT_TRACE

    print("clean Poisson runs (no burn alert may fire):")
    failures = clean_runs(artifact)

    print("overloaded control (alerts must fire and replay):")
    control_ok = overloaded_control(trace_path)

    if failures:
        print(f"FAIL: false alerts on clean run(s): {', '.join(failures)}")
        return 1
    if not control_ok:
        print("FAIL: overloaded control did not alert fast enough")
        return 1
    print("OK: zero false alerts on clean runs; overload detected in time")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
