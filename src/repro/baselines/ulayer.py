"""uLayer baseline: intra-operator CPU+GPU channel partitioning.

uLayer (Kim et al., EuroSys 2019) accelerates a *single* DNN by
splitting every layer channel-wise between the CPU and GPU, merging the
partial outputs after each layer.  The paper's related-work discussion
(Sec. II) points at the weakness Hetero2Pipe avoids: "the intermediate
results from different processors are deemed to be merged with
additional overhead of significant communication/memory copy per
split."

Implementation: for each layer, the work splits by a ratio chosen so
both processors finish together (their effective throughputs for that
operator family), then a per-layer merge cost — the full output tensor
crossing the unified memory plus both units' synchronization
overheads — is paid.  Multi-DNN requests run serially (uLayer has no
multi-DNN coordination), which is exactly how the paper positions it
in Table I (multi-DNN: no).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.ir import Layer, ModelGraph
from ..profiling.latency import copy_latency_ms, layer_latency_ms
from ..profiling.profiler import SocProfiler
from ..profiling.slowdown import SliceWorkload, slowdown_fraction


@dataclass(frozen=True)
class LayerSplit:
    """One layer's channel split decision."""

    layer_name: str
    cpu_fraction: float
    layer_ms: float
    merge_ms: float

    @property
    def total_ms(self) -> float:
        return self.layer_ms + self.merge_ms


def split_layer(
    layer: Layer, cpu: ProcessorSpec, gpu: ProcessorSpec, soc: SocSpec
) -> LayerSplit:
    """Balance one layer channel-wise across CPU and GPU.

    The optimal fraction equalizes both sides' finish time given their
    effective throughputs; co-running both units also costs the mutual
    CPU-GPU slowdown on the shared bus, which uLayer does not model but
    physically pays.
    """
    t_cpu = layer_latency_ms(layer, cpu)
    t_gpu = layer_latency_ms(layer, gpu)
    # fraction on CPU such that f * t_cpu == (1 - f) * t_gpu
    fraction = t_gpu / (t_cpu + t_gpu)
    balanced = fraction * t_cpu

    # Mutual slowdown while the halves co-run: approximate with the
    # whole layer's footprint on each side (conservative for uLayer).
    cpu_gpu_coupling = soc.coupling_factor(cpu.kind, gpu.kind)
    # Intensity of half a layer is roughly half the layer's rate; fold
    # the 0.5 into a single inflation factor for both sides.
    inflation = 1.0 + 0.5 * cpu_gpu_coupling * 0.2
    co_time = balanced * inflation

    # Merge: the full output tensor is gathered to one address space,
    # paying the copy path plus both dispatch overheads.
    merge = copy_latency_ms(layer.output_bytes, cpu, gpu)
    return LayerSplit(
        layer_name=layer.name,
        cpu_fraction=fraction,
        layer_ms=co_time,
        merge_ms=merge,
    )


def ulayer_model_latency_ms(
    model: ModelGraph, soc: SocSpec
) -> Tuple[float, List[LayerSplit]]:
    """End-to-end uLayer latency of one model (layer-wise split+merge)."""
    cpu, gpu = soc.cpu_big, soc.gpu
    splits = [split_layer(layer, cpu, gpu, soc) for layer in model.layers]
    return sum(s.total_ms for s in splits), splits


def ulayer_sequence_latency_ms(
    soc: SocSpec,
    models: Sequence[ModelGraph],
) -> float:
    """Serial multi-DNN latency under uLayer (no coordination).

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    return sum(ulayer_model_latency_ms(m, soc)[0] for m in models)


def ulayer_speedup_over_cpu(
    soc: SocSpec,
    model: ModelGraph,
    profiler: Optional[SocProfiler] = None,
) -> float:
    """Single-model speedup of uLayer vs CPU-only execution.

    uLayer's own claim: per-model gains from CPU+GPU cooperation.  The
    merge overhead caps it well below the ideal 1 + gpu/cpu ratio —
    the structural cost Hetero2Pipe's coarse slicing avoids.
    """
    profiler = profiler or SocProfiler(soc)
    cpu_only = profiler.profile(model).whole_model_ms(soc.cpu_big)
    ulayer, _ = ulayer_model_latency_ms(model, soc)
    return cpu_only / ulayer
