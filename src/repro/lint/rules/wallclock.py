"""H2P101 — no wall-clock reads inside the simulator paths.

The whole reproduction rests on *deterministic simulated time*: the
executor advances an event clock (Eq. 8 precedences), and DESIGN.md
promises bit-for-bit reproducible experiments.  A single
``time.time()`` / ``datetime.now()`` in ``repro.runtime`` or
``repro.core`` silently couples plan costs to the host machine, which
is exactly the class of timing bug Band-style schedulers die on.  The
rule bans wall-clock reads in those packages; profiling/benchmark code
outside them may measure real time freely.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..engine import Finding, LintContext, LintRule, register_rule

#: Packages whose second path component makes a file a simulator path.
SIMULATOR_PACKAGES = ("runtime", "core")

#: (module, attribute) pairs that read the host clock.
_WALL_CLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Names importable via ``from time import ...`` that read the clock.
_WALL_CLOCK_FROM_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}


def _in_simulator_path(ctx: LintContext) -> bool:
    parts = ctx.package_parts
    return len(parts) >= 2 and parts[1] in SIMULATOR_PACKAGES


@register_rule
class WallClockRule(LintRule):
    code = "H2P101"
    name = "no-wall-clock-in-simulator"
    rationale = (
        "runtime/ and core/ implement a deterministic discrete-event "
        "simulation; reading the host clock breaks reproducibility"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if not _in_simulator_path(ctx):
            return
        # Track ``from time import perf_counter [as pc]`` style aliases.
        clock_aliases: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_FROM_TIME:
                        bound = alias.asname or alias.name
                        clock_aliases[bound] = ("time", alias.name)
                        yield self.finding(
                            ctx,
                            node,
                            f"imports wall-clock 'time.{alias.name}' into a "
                            "simulator path; use simulated event time",
                        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and (base.id, node.attr) in _WALL_CLOCK_ATTRS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read '{base.id}.{node.attr}' in a "
                        "simulator path; the executor's event clock is the "
                        "only time source here",
                    )
            elif isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Name) and fn.id in clock_aliases:
                    mod, attr = clock_aliases[fn.id]
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock call '{fn.id}()' ({mod}.{attr}) in a "
                        "simulator path",
                    )
