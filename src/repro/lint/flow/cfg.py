"""Intraprocedural control-flow graphs over ``ast`` statements.

:func:`build_cfg` lowers one function body (or a module body) into
basic blocks connected by control edges. Blocks hold *elements* — the
simple statements plus, for compound statements, just the piece a
dataflow transfer function must see:

* ``if``/``while`` contribute their **test expression** to the block
  that evaluates it; their bodies become successor blocks;
* ``for`` and ``with`` contribute the **statement node itself** (the
  transfer function binds the loop target / context variable without
  recursing into the body — the body is its own block chain);
* ``try`` bodies, handlers, ``else`` and ``finally`` are separate
  block chains, with conservative exception edges (an exception may
  fire before any body statement, so the pre-``try`` block also feeds
  every handler);
* ``return``/``raise`` edge to the synthetic exit block,
  ``break``/``continue`` to the enclosing loop's after/header block.

Nested function and class definitions are elements too (a transfer
function may bind their name) but are never descended into — rules
analyze each function separately.

The graph is deliberately an over-approximation (every ``while`` may
exit, every ``try`` body may complete): extra edges only *join* more
states, which in the unit lattice means fewer reported violations,
never more. Precision costs recall, not false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class BasicBlock:
    """One straight-line run of elements plus its control successors."""

    block_id: int
    elements: List[ast.AST] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


@dataclass
class CFG:
    """Basic blocks keyed by id, with distinguished entry and exit."""

    blocks: Dict[int, BasicBlock]
    entry_id: int
    exit_id: int

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def reachable_ids(self) -> List[int]:
        """Block ids reachable from the entry, in visit order."""
        seen = {self.entry_id}
        order = [self.entry_id]
        stack = [self.entry_id]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    stack.append(succ)
        return order


class _Builder:
    def __init__(self) -> None:
        self._blocks: Dict[int, BasicBlock] = {}
        self._next_id = 0
        self.exit_block = self.new_block()
        # (header_block_id, after_block_id) per enclosing loop.
        self._loops: List[Tuple[int, int]] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(block_id=self._next_id)
        self._blocks[self._next_id] = block
        self._next_id += 1
        return block

    def finish(self, entry: BasicBlock) -> CFG:
        return CFG(
            blocks=self._blocks,
            entry_id=entry.block_id,
            exit_id=self.exit_block.block_id,
        )

    # -- statement lowering -------------------------------------------

    def build_stmts(
        self, stmts: Sequence[ast.stmt], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Lower ``stmts`` starting in ``current``.

        Returns the block that control falls out of, or ``None`` when
        every path diverted (return/raise/break/continue). Statements
        after a divert are unreachable and lowered into an orphan block
        so the tree stays covered, but no edge leads there.
        """
        for stmt in stmts:
            if current is None:
                current = self.new_block()  # unreachable continuation
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(
        self, stmt: ast.stmt, current: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.elements.append(stmt)
            current.add_successor(self.exit_block.block_id)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                current.add_successor(self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                current.add_successor(self._loops[-1][0])
            return None
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._build_loop(stmt, current, header_element=stmt.test)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current, header_element=stmt)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.elements.append(stmt)
            return self.build_stmts(stmt.body, current)
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            return self._build_match(stmt, current)
        # Simple statements (and nested defs, never descended into).
        current.elements.append(stmt)
        return current

    def _build_if(
        self, stmt: ast.If, current: BasicBlock
    ) -> Optional[BasicBlock]:
        current.elements.append(stmt.test)
        after = self.new_block()
        live = False

        then_entry = self.new_block()
        current.add_successor(then_entry.block_id)
        then_exit = self.build_stmts(stmt.body, then_entry)
        if then_exit is not None:
            then_exit.add_successor(after.block_id)
            live = True

        if stmt.orelse:
            else_entry = self.new_block()
            current.add_successor(else_entry.block_id)
            else_exit = self.build_stmts(stmt.orelse, else_entry)
            if else_exit is not None:
                else_exit.add_successor(after.block_id)
                live = True
        else:
            current.add_successor(after.block_id)
            live = True
        return after if live else None

    def _build_loop(
        self,
        stmt: ast.stmt,
        current: BasicBlock,
        header_element: ast.AST,
    ) -> BasicBlock:
        header = self.new_block()
        header.elements.append(header_element)
        current.add_successor(header.block_id)
        after = self.new_block()

        body_entry = self.new_block()
        header.add_successor(body_entry.block_id)
        self._loops.append((header.block_id, after.block_id))
        body = getattr(stmt, "body", [])
        body_exit = self.build_stmts(body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            body_exit.add_successor(header.block_id)

        orelse = getattr(stmt, "orelse", [])
        if orelse:
            else_entry = self.new_block()
            header.add_successor(else_entry.block_id)
            else_exit = self.build_stmts(orelse, else_entry)
            if else_exit is not None:
                else_exit.add_successor(after.block_id)
        else:
            header.add_successor(after.block_id)
        return after

    def _build_try(
        self, stmt: ast.Try, current: BasicBlock
    ) -> Optional[BasicBlock]:
        after = self.new_block()
        live_exits: List[BasicBlock] = []

        body_entry = self.new_block()
        current.add_successor(body_entry.block_id)
        body_exit = self.build_stmts(stmt.body, body_entry)

        # An exception may fire before any body statement ran, so both
        # the pre-try state and the post-body state feed every handler.
        for handler in stmt.handlers:
            handler_entry = self.new_block()
            handler_entry.elements.append(handler)
            current.add_successor(handler_entry.block_id)
            if body_exit is not None:
                body_exit.add_successor(handler_entry.block_id)
            handler_exit = self.build_stmts(handler.body, handler_entry)
            if handler_exit is not None:
                live_exits.append(handler_exit)

        if body_exit is not None:
            if stmt.orelse:
                else_entry = self.new_block()
                body_exit.add_successor(else_entry.block_id)
                else_exit = self.build_stmts(stmt.orelse, else_entry)
                if else_exit is not None:
                    live_exits.append(else_exit)
            else:
                live_exits.append(body_exit)

        if stmt.finalbody:
            final_entry = self.new_block()
            for block in live_exits:
                block.add_successor(final_entry.block_id)
            if not live_exits:
                current.add_successor(final_entry.block_id)
            final_exit = self.build_stmts(stmt.finalbody, final_entry)
            if final_exit is None:
                return None
            final_exit.add_successor(after.block_id)
            return after

        if not live_exits:
            return None
        for block in live_exits:
            block.add_successor(after.block_id)
        return after

    def _build_match(
        self, stmt: ast.AST, current: BasicBlock
    ) -> Optional[BasicBlock]:
        current.elements.append(stmt.subject)  # type: ignore[attr-defined]
        after = self.new_block()
        current.add_successor(after.block_id)  # no case may match
        live = True
        for case in stmt.cases:  # type: ignore[attr-defined]
            case_entry = self.new_block()
            current.add_successor(case_entry.block_id)
            case_exit = self.build_stmts(case.body, case_entry)
            if case_exit is not None:
                case_exit.add_successor(after.block_id)
        return after if live else None


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Lower a statement list (function or module body) into a CFG."""
    builder = _Builder()
    entry = builder.new_block()
    tail = builder.build_stmts(body, entry)
    if tail is not None:
        tail.add_successor(builder.exit_block.block_id)
    return builder.finish(entry)


__all__ = ["BasicBlock", "CFG", "build_cfg"]
