"""Tests for the ridge regression and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.regression import RidgeModel, fit_ridge
from repro.analysis.stats import geometric_mean, linear_fit, summarize


class TestRidge:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        true_w = np.array([2.0, -1.0, 0.5])
        y = x @ true_w + 3.0
        model = fit_ridge(x, y, alpha=1e-6)
        assert np.allclose(model.weights, true_w, atol=1e-3)
        assert model.intercept == pytest.approx(3.0, abs=1e-3)

    def test_matches_closed_form(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        alpha = 2.5
        model = fit_ridge(x, y, alpha=alpha, fit_intercept=False)
        expected = np.linalg.solve(x.T @ x + alpha * np.eye(2), x.T @ y)
        assert np.allclose(model.weights, expected)
        assert model.intercept == 0.0

    def test_regularization_shrinks_weights(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 3))
        y = x @ np.array([5.0, 5.0, 5.0])
        small = fit_ridge(x, y, alpha=1e-6)
        large = fit_ridge(x, y, alpha=1e3)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)

    def test_predict_single_and_batch(self):
        model = RidgeModel(weights=np.array([1.0, 2.0]), intercept=0.5, alpha=1.0)
        assert model.predict([1.0, 1.0]) == pytest.approx(3.5)
        batch = model.predict(np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert np.allclose(batch, [3.5, 0.5])

    def test_predict_wrong_width(self):
        model = RidgeModel(weights=np.array([1.0, 2.0]), intercept=0.0, alpha=1.0)
        with pytest.raises(ValueError):
            model.predict([1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_ridge(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            fit_ridge(np.ones((5, 2)), np.ones(4))

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            fit_ridge(np.ones((3, 1)), np.ones(3), alpha=-1e-9)

    def test_alpha_zero_is_ordinary_least_squares(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(40, 3))
        y = x @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = fit_ridge(x, y, alpha=0.0)
        assert np.allclose(model.predict(x), y, atol=1e-8)

    def test_alpha_zero_singular_gram_falls_back(self):
        # Two identical columns: X^T X is singular; alpha=0 must not
        # raise, and the minimum-norm solution still fits the data.
        col = np.arange(1.0, 7.0)
        x = np.column_stack([col, col])
        y = 3.0 * col + 1.0
        model = fit_ridge(x, y, alpha=0.0)
        assert np.allclose(model.predict(x), y, atol=1e-8)
        # Minimum-norm splits the weight evenly across the clones.
        assert model.weights[0] == pytest.approx(model.weights[1])

    def test_alpha_zero_underdetermined(self):
        # Fewer samples than features: rank-deficient by construction.
        x = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        y = np.array([1.0, 2.0])
        model = fit_ridge(x, y, alpha=0.0)
        assert np.allclose(model.predict(x), y, atol=1e-8)

    def test_single_sample_fit(self):
        # One centred sample is all zeros — degenerate for any design.
        x = np.array([[2.0, 4.0]])
        y = np.array([10.0])
        for alpha in (0.0, 1.0):
            model = fit_ridge(x, y, alpha=alpha)
            # The intercept alone must reproduce the single target.
            assert model.predict(x[0]) == pytest.approx(10.0)

    def test_empty_design_rejected(self):
        with pytest.raises(ValueError):
            fit_ridge(np.empty((0, 2)), np.empty(0))

    def test_predict_vector_matrix_round_trip(self):
        model = RidgeModel(
            weights=np.array([1.5, -0.5]), intercept=2.0, alpha=1.0
        )
        batch = np.array([[1.0, 2.0], [3.0, 4.0], [0.0, 0.0]])
        batched = model.predict(batch)
        assert isinstance(batched, np.ndarray)
        assert batched.shape == (3,)
        singles = [model.predict(row) for row in batch]
        assert all(isinstance(s, float) for s in singles)
        assert np.allclose(batched, singles)

    @given(
        st.lists(st.floats(-10, 10), min_size=3, max_size=3),
        st.floats(-5, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_recovery_property(self, weights, intercept):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(100, 3))
        y = x @ np.asarray(weights) + intercept
        model = fit_ridge(x, y, alpha=1e-9)
        prediction = model.predict(x[0])
        assert prediction == pytest.approx(float(y[0]), abs=1e-4)


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_line_good_r2(self):
        rng = np.random.default_rng(3)
        x = np.linspace(0, 10, 50)
        y = 3 * x + 1 + rng.normal(scale=0.1, size=50)
        fit = linear_fit(x, y)
        assert fit.r_squared > 0.99

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2, 3], [1, 2])


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])
