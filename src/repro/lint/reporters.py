"""Finding reporters: human text and machine JSON.

Text mimics the compiler convention (``path:line:col: CODE message``)
so editors and CI annotations pick locations up for free; JSON carries
the same fields plus a summary block for dashboards.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .engine import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One finding per line plus a per-code summary footer."""
    if not findings:
        return "lint: clean (0 findings)"
    lines = [str(f) for f in findings]
    counts = Counter(f.code for f in findings)
    summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
    lines.append(f"lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: findings list + per-code counts."""
    counts: Dict[str, int] = dict(
        sorted(Counter(f.code for f in findings).items())
    )
    document = {
        "findings": [f.to_dict() for f in findings],
        "counts": counts,
        "total": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def exit_code(findings: Sequence[Finding]) -> int:
    """0 clean, 1 findings — the contract CI relies on."""
    return 1 if findings else 0


__all__: List[str] = ["render_text", "render_json", "exit_code"]
