"""Tests for Algorithm 2: contention mitigation via Kuhn-Munkres."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mitigation import MitigationResult, Move, mitigate_sequence
from repro.core.window import conflicting_high_pairs, is_mitigated


class TestBasics:
    def test_already_mitigated_is_noop(self):
        labels = [True, False, False, True]
        result = mitigate_sequence(labels, 3)
        assert result.order == (0, 1, 2, 3)
        assert result.mitigated
        assert result.total_cost == 0
        assert result.moves == ()

    def test_adjacent_pair_separated(self):
        result = mitigate_sequence([True, True, False, False], 2)
        new = [[True, True, False, False][i] for i in result.order]
        assert result.mitigated
        assert is_mitigated(new, 2)
        assert len(result.moves) >= 1

    def test_three_highs_fully_interleaved(self):
        labels = [True] * 3 + [False] * 6
        result = mitigate_sequence(labels, 3)
        new = [labels[i] for i in result.order]
        assert result.mitigated
        assert is_mitigated(new, 3)

    def test_insufficient_lows_partial(self):
        labels = [True, True, True]
        result = mitigate_sequence(labels, 3)
        assert not result.mitigated
        assert sorted(result.order) == [0, 1, 2]

    def test_single_request(self):
        result = mitigate_sequence([True], 4)
        assert result.order == (0,)
        assert result.mitigated

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            mitigate_sequence([], 3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            mitigate_sequence([True], 0)

    def test_all_low_untouched(self):
        labels = [False] * 5
        result = mitigate_sequence(labels, 4)
        assert result.order == tuple(range(5))
        assert result.mitigated

    def test_move_cost_is_displacement(self):
        move = Move(item=3, source_position=1, target_position=5)
        assert move.cost == 4

    def test_apply_reorders_parallel_sequence(self):
        result = MitigationResult(
            order=(2, 0, 1), moves=(), mitigated=True, total_cost=0
        )
        assert result.apply(["a", "b", "c"]) == ["c", "a", "b"]

    def test_apply_length_mismatch(self):
        result = MitigationResult(
            order=(0, 1), moves=(), mitigated=True, total_cost=0
        )
        with pytest.raises(ValueError):
            result.apply(["a"])


class TestProperties:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=16),
        st.integers(2, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_order_is_permutation(self, labels, k):
        result = mitigate_sequence(labels, k)
        assert sorted(result.order) == list(range(len(labels)))

    @given(
        st.lists(st.booleans(), min_size=1, max_size=16),
        st.integers(2, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_increases_conflicts(self, labels, k):
        result = mitigate_sequence(labels, k)
        new = [labels[i] for i in result.order]
        assert len(conflicting_high_pairs(new, k)) <= len(
            conflicting_high_pairs(labels, k)
        )

    @given(
        st.lists(st.booleans(), min_size=1, max_size=16),
        st.integers(2, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_mitigated_flag_consistent(self, labels, k):
        result = mitigate_sequence(labels, k)
        new = [labels[i] for i in result.order]
        assert result.mitigated == is_mitigated(new, k)

    @given(st.integers(2, 4), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_enough_lows_always_mitigates(self, k, num_high):
        # With (K-1) lows between each pair of highs available, full
        # mitigation must succeed.
        labels = [True] * num_high + [False] * (num_high * (k - 1) + k)
        result = mitigate_sequence(labels, k)
        assert result.mitigated

    @given(
        st.lists(st.booleans(), min_size=2, max_size=12),
        st.integers(2, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_total_cost_matches_moves(self, labels, k):
        result = mitigate_sequence(labels, k)
        assert result.total_cost == sum(m.cost for m in result.moves)


class TestSourceConflictCheck:
    """Unit tests for ``_creates_new_source_conflict`` — the helper must
    compare *position-adjusted* pair sets, not raw counts or raw pairs."""

    def test_removal_before_pair_shifts_but_does_not_create(self):
        from repro.core.mitigation import _creates_new_source_conflict

        # Highs at 3 and 5 conflict for k=3; removing the low at 1 only
        # shifts the pair to (2, 4).  An unadjusted set comparison would
        # wrongly flag (2, 4) as "new".
        labels = [False, False, False, True, False, True, False]
        k = 3
        before = conflicting_high_pairs(list(labels), k)
        assert before == [(3, 5)]
        assert not _creates_new_source_conflict(list(labels), before, 1, k)

    def test_removing_separating_low_is_detected(self):
        from repro.core.mitigation import _creates_new_source_conflict

        # The low at 1 is the only separator of highs 0 and 2 (k=2):
        # pulling it out creates the genuinely-new pair (0, 1).
        labels = [True, False, True]
        before = conflicting_high_pairs(list(labels), k=2)
        assert before == []
        assert _creates_new_source_conflict(list(labels), before, 1, 2)

    def test_mixed_shift_and_creation(self):
        from repro.core.mitigation import _creates_new_source_conflict

        # k=3: highs at 0/3 are exactly-separated (two lows), highs at
        # 3/5 and 5/6 already conflict.
        labels = [True, False, False, True, False, True, True]
        k = 3
        before = conflicting_high_pairs(list(labels), k)
        assert set(before) == {(3, 5), (5, 6)}
        # Removing a separator of (0, 3) drops that gap below k-1: a
        # genuinely new conflict appears alongside the shifted old ones.
        assert _creates_new_source_conflict(list(labels), before, 1, k)
        # Removing the low inside the already-conflicting (3, 5) pair
        # tightens it but creates no *new* pair once positions are
        # adjusted — the helper must answer False.
        assert not _creates_new_source_conflict(list(labels), before, 4, k)

    def test_mitigation_avoids_conflict_creating_low(self):
        # k=2, highs at 0,2,5,6.  Pair (5,6) needs a low; the low at 1
        # is the sole separator of (0,2) so using it would create a new
        # source conflict — mitigation must pick a different low and
        # still fully mitigate.
        labels = [True, False, True, False, False, True, True]
        result = mitigate_sequence(labels, k=2)
        assert result.mitigated
        new = [labels[i] for i in result.order]
        assert conflicting_high_pairs(new, 2) == []


class TestSpanHygiene:
    def test_mitigate_span_closes_on_exception(self, monkeypatch):
        """The plan.mitigate span must close even when the LAP solver
        blows up mid-round (it used to leak an open span)."""
        from repro import obs
        import repro.core.mitigation as mitigation

        def boom(matrix):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(mitigation, "kuhn_munkres", boom)
        labels = [True, True, False, False]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            with pytest.raises(RuntimeError):
                mitigate_sequence(labels, k=2)
            spans = rec.all_spans()
        assert any(s.name == "plan.mitigate" for s in spans)
        assert all(s.end_s is not None for s in spans)
