"""Profile tables: O(1) slice-cost queries via prefix sums.

The horizontal DP (Algorithm 1) needs ``T_k^e(i, j)`` — the solo
execution plus memory-copy time of layer slice ``[i, j]`` on processor
``k`` — in constant time.  The paper notes: "We leverage prefix sum to
optimize the computation of T_k^e(i, j) in O(1)."  :class:`ModelProfile`
precomputes per-processor per-layer latencies and their prefix sums, plus
prefix sums of DRAM traffic (for contention intensity) and of
NPU-unsupported layer counts (for feasibility tests).

All profiles are measured at thermal steady state, as the paper does
("we conduct all the experiments at the thermal limits when frequency
scaling and temperature have reached a steady state").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import obs
from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..hardware.thermal import sustained_frequency_scale
from ..models.ir import Layer, ModelGraph
from .latency import copy_latency_ms, layer_compute_memory_ms, layer_latency_ms, layer_traffic_bytes

#: A value standing in for "this slice cannot execute here" in DP tables.
INFEASIBLE = float("inf")


class ModelProfile:
    """Solo-execution profile of one model on one SoC.

    Args:
        model: The model to profile.
        soc: The target platform.
        thermal_steady_state: When True (default), each processor's
            throughput is scaled by its sustained-frequency factor at
            full utilization.
        thermal_scales: Optional explicit per-processor-name frequency
            scales overriding the steady-state defaults — used by the
            thermal-feedback planner, which derives scales from each
            processor's *actual* utilization instead of assuming 100 %.
    """

    def __init__(
        self,
        model: ModelGraph,
        soc: SocSpec,
        thermal_steady_state: bool = True,
        thermal_scales: Optional[Dict[str, float]] = None,
    ):
        self.model = model
        self.soc = soc
        self.thermal_scales = dict(thermal_scales) if thermal_scales else None
        n = model.num_layers
        self._latency: Dict[str, Tuple[float, ...]] = {}
        self._lat_prefix: Dict[str, Tuple[float, ...]] = {}
        self._compute_prefix: Dict[str, Tuple[float, ...]] = {}
        self._memory_prefix: Dict[str, Tuple[float, ...]] = {}
        self._traffic_prefix: Dict[str, Tuple[float, ...]] = {}
        self._unsupported_prefix: Dict[str, Tuple[int, ...]] = {}
        self._weight_prefix: Tuple[float, ...] = self._prefix(
            [layer.weight_bytes for layer in model.layers]
        )
        self._peak_activation: Tuple[float, ...] = tuple(
            layer.activation_bytes for layer in model.layers
        )

        for proc in soc.processors:
            if self.thermal_scales is not None and proc.name in self.thermal_scales:
                scale = self.thermal_scales[proc.name]
            elif thermal_steady_state:
                scale = sustained_frequency_scale(proc.kind, 1.0)
            else:
                scale = 1.0
            lat, comp, mem, traffic, unsupported = [], [], [], [], []
            for layer in model.layers:
                if proc.supports(layer):
                    c_ms, m_ms = layer_compute_memory_ms(layer, proc, scale)
                    lat.append(layer_latency_ms(layer, proc, scale))
                    comp.append(c_ms)
                    mem.append(m_ms)
                    traffic.append(layer_traffic_bytes(layer, proc))
                    unsupported.append(0)
                else:
                    lat.append(0.0)
                    comp.append(0.0)
                    mem.append(0.0)
                    traffic.append(0.0)
                    unsupported.append(1)
            self._latency[proc.name] = tuple(lat)
            self._lat_prefix[proc.name] = self._prefix(lat)
            self._compute_prefix[proc.name] = self._prefix(comp)
            self._memory_prefix[proc.name] = self._prefix(mem)
            self._traffic_prefix[proc.name] = self._prefix(traffic)
            self._unsupported_prefix[proc.name] = self._prefix_int(unsupported)

    @staticmethod
    def _prefix(values) -> Tuple[float, ...]:
        out = [0.0]
        for v in values:
            out.append(out[-1] + v)
        return tuple(out)

    @staticmethod
    def _prefix_int(values) -> Tuple[int, ...]:
        out = [0]
        for v in values:
            out.append(out[-1] + v)
        return tuple(out)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def feasible(self, proc: ProcessorSpec, start: int, end: int) -> bool:
        """Whether slice ``[start, end]`` can execute on ``proc`` at all."""
        self._check(start, end)
        prefix = self._unsupported_prefix[proc.name]
        return prefix[end + 1] - prefix[start] == 0

    # ------------------------------------------------------------------
    # Costs (Eq. 2 terms)
    # ------------------------------------------------------------------
    def exec_ms(self, proc: ProcessorSpec, start: int, end: int) -> float:
        """Solo execution time ``T^e`` of slice ``[start, end]`` on ``proc``.

        Includes one kernel-launch overhead per slice.  Returns
        :data:`INFEASIBLE` if the slice contains an unsupported operator.
        """
        self._check(start, end)
        if not self.feasible(proc, start, end):
            return INFEASIBLE
        prefix = self._lat_prefix[proc.name]
        return prefix[end + 1] - prefix[start] + proc.launch_overhead_ms

    def layer_ms(self, proc: ProcessorSpec, index: int) -> float:
        """Solo latency of a single layer (no launch overhead)."""
        self._check(index, index)
        if not self.feasible(proc, index, index):
            return INFEASIBLE
        return self._latency[proc.name][index]

    def copy_out_ms(
        self, src: ProcessorSpec, dst: ProcessorSpec, end: int
    ) -> float:
        """Boundary tensor copy ``T^c`` when a slice ending at ``end`` on
        ``src`` hands off to ``dst``."""
        nbytes = self.model.boundary_bytes(end)
        return copy_latency_ms(nbytes, src, dst)

    def slice_cost_ms(
        self,
        proc: ProcessorSpec,
        start: int,
        end: int,
        next_proc: Optional[ProcessorSpec] = None,
    ) -> float:
        """``T^e + T^c`` of Eq. 2 for slice ``[start, end]``.

        The boundary copy is charged to the producing stage; pass
        ``next_proc=None`` for the final stage (no hand-off).
        """
        exec_time = self.exec_ms(proc, start, end)
        if exec_time == INFEASIBLE:
            return INFEASIBLE
        if next_proc is None or end == self.model.num_layers - 1:
            return exec_time
        return exec_time + self.copy_out_ms(proc, next_proc, end)

    # ------------------------------------------------------------------
    # Memory-boundness and contention inputs
    # ------------------------------------------------------------------
    def traffic_bytes(self, proc: ProcessorSpec, start: int, end: int) -> float:
        """Effective DRAM traffic of the slice on ``proc``."""
        self._check(start, end)
        prefix = self._traffic_prefix[proc.name]
        return prefix[end + 1] - prefix[start]

    def traffic_rate_gbps(
        self, proc: ProcessorSpec, start: int, end: int
    ) -> float:
        """Bus-demand rate (GB/s) of the slice while executing solo.

        This is the ground-truth driver of contention intensity: short,
        traffic-heavy executions (SqueezeNet fire modules, FC layers)
        demand high instantaneous bandwidth — Observations 2 and 3.
        """
        exec_time = self.exec_ms(proc, start, end)
        if exec_time == INFEASIBLE or exec_time <= 0:
            return 0.0
        return self.traffic_bytes(proc, start, end) / 1e9 / (exec_time / 1e3)

    def memory_fraction(self, proc: ProcessorSpec, start: int, end: int) -> float:
        """Fraction of slice time bound by memory (roofline memory share)."""
        self._check(start, end)
        comp = self._compute_prefix[proc.name]
        mem = self._memory_prefix[proc.name]
        c = comp[end + 1] - comp[start]
        m = mem[end + 1] - mem[start]
        total = c + m
        if total <= 0:
            return 0.0
        return m / total

    def working_set_bytes(self, start: int, end: int) -> float:
        """Resident footprint of the slice: weights + peak activations."""
        self._check(start, end)
        weights = self._weight_prefix[end + 1] - self._weight_prefix[start]
        peak_act = max(self._peak_activation[start : end + 1])
        return weights + peak_act

    def whole_model_ms(self, proc: ProcessorSpec) -> float:
        """Solo latency of the entire model on one processor."""
        return self.exec_ms(proc, 0, self.model.num_layers - 1)

    def _check(self, start: int, end: int) -> None:
        if not 0 <= start <= end < self.model.num_layers:
            raise IndexError(
                f"invalid slice [{start}, {end}] for {self.model.name!r} "
                f"({self.model.num_layers} layers)"
            )


class SocProfiler:
    """Memoizes :class:`ModelProfile` objects per ``(soc, model)``.

    The SoC dimension is the instance itself (each profiler is bound to
    one :class:`SocSpec`); the model dimension is the model *name*, the
    identity convention used throughout the planner's caches.  Share one
    profiler across the planner and its estimator so the zoo profiles
    behind the Eq. 1 fit are measured once — and never share a profiler
    across SoCs or thermal configurations (see docs/PERFORMANCE.md).
    """

    def __init__(
        self,
        soc: SocSpec,
        thermal_steady_state: bool = True,
        thermal_scales: Optional[Dict[str, float]] = None,
    ):
        self.soc = soc
        self._thermal = thermal_steady_state
        self._scales = dict(thermal_scales) if thermal_scales else None
        self._cache: Dict[str, ModelProfile] = {}

    def profile(self, model: ModelGraph) -> ModelProfile:
        """Profile a model (memoized by model name)."""
        cached = self._cache.get(model.name)
        if cached is not None:
            obs.add("profile_cache_hits")
            return cached
        obs.add("profile_cache_misses")
        profile = ModelProfile(
            model,
            self.soc,
            thermal_steady_state=self._thermal,
            thermal_scales=self._scales,
        )
        self._cache[model.name] = profile
        return profile

    def __call__(self, model: ModelGraph) -> ModelProfile:
        return self.profile(model)
