"""Fig. 8 benchmark: vertical-optimization ablations.

(a) H2P vs exhaustive search vs simulated annealing vs No-C/T; the
    paper reports H2P within ~4 % of the exhaustive optimum.
(b) Component removal: contention mitigation and tail optimization each
    contribute; removing both costs ~1.3x on average.
"""

from repro.experiments import fig8_ablation
from repro.experiments.common import geomean

NUM_COMBINATIONS = 12


def test_bench_fig8a_strategies(run_once):
    points = run_once(
        fig8_ablation.run_strategies, num_combinations=NUM_COMBINATIONS
    )
    print("\n" + fig8_ablation.render_strategies(points))

    # H2P stays close to the exhaustive reference (paper: ~4 %).
    gap = fig8_ablation.optimality_gap(points)
    assert gap < 0.10, f"gap to exhaustive {gap * 100:.1f}%"

    # H2P beats simulated annealing on average.
    ratios = [p.latency_ms["annealing"] / p.latency_ms["h2p"] for p in points]
    assert geomean(ratios) > 0.98

    # The sorted-by-latency presentation is monotone by construction.
    h2ps = [p.latency_ms["h2p"] for p in points]
    assert h2ps == sorted(h2ps)


def test_bench_fig8b_components(run_once):
    ablation = run_once(
        fig8_ablation.run_components, num_combinations=NUM_COMBINATIONS
    )
    print("\n" + fig8_ablation.render_components(ablation))

    # Progressive degradation: full <= single removals <= both removed.
    assert ablation.full_ms <= ablation.no_contention_ms + 1e-6
    assert ablation.full_ms <= ablation.no_tail_ms + 1e-6
    assert ablation.full_ms <= ablation.no_both_ms + 1e-6
    # Removing both components costs measurably (paper: ~1.3x).
    assert ablation.no_both_ms / ablation.full_ms > 1.02
