"""Co-execution slowdown model for the shared memory bus.

Implements the ``T^co`` term of Eq. 2.  The model is built from the
paper's empirical observations:

* **Observation 1 (slowdown consistency).** Fairness-aware memory
  controllers spread the penalty across contenders, so a victim's
  slowdown can be predicted from the *solo* demand of its co-runners.
* **Sec. III pairwise structure.** CPU-GPU pairs interfere strongly
  (18-21 % for YOLOv4+BERT); any pair involving the NPU barely
  interferes (2-5 %) thanks to its dedicated memory path.
* **Fig. 10 intra-cluster contention.** Splitting a CPU cluster between
  two workloads causes conflicting L2 misses and up to ~70 % slowdown —
  which is why the planner never co-schedules within a cluster.

The victim's slowdown is a saturating function of the aggregate pressure
exerted by its co-runners::

    slowdown = S_MAX * (1 - exp(-sum_c coupling(v, c) * intensity_c * sens_v))

where ``intensity_c`` is the co-runner's solo bus-demand rate normalized
by :data:`REFERENCE_BANDWIDTH_GBPS` and ``sens_v`` grows with the
victim's own memory-boundness.  For small pressure the response is
linear (the common CPU-GPU regime); for pathological intra-cluster
sharing it saturates near :data:`MAX_SLOWDOWN` (the 70 % of Fig. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from .profiler import ModelProfile

#: Bandwidth used to normalize solo traffic rates into intensities.
REFERENCE_BANDWIDTH_GBPS = 10.0

#: Saturation ceiling of the slowdown response.
MAX_SLOWDOWN = 0.90

#: Victim sensitivity: base + gain * memory_fraction.
SENSITIVITY_BASE = 0.65
SENSITIVITY_GAIN = 2.0

#: Fraction of a dedicated-path unit's traffic that leaks onto the shared
#: bus (NPU DMA descriptors, fallback tensors).  Applied both to the NPU
#: as a contention *source* and, as a sensitivity damping, to the NPU as
#: a *victim* — reproducing the 2-5 % NPU-pair slowdowns of Sec. III.
DEDICATED_PATH_LEAK = 0.05
DEDICATED_PATH_SENSITIVITY = 0.20


@dataclass(frozen=True)
class SliceWorkload:
    """One co-running slice: which layers of which model on which unit."""

    profile: ModelProfile
    proc: ProcessorSpec
    start: int
    end: int

    def solo_ms(self) -> float:
        return self.profile.exec_ms(self.proc, self.start, self.end)

    def intensity(self) -> float:
        """Solo bus-demand intensity this workload exerts on others.

        A dedicated-path unit (NPU) leaks only
        :data:`DEDICATED_PATH_LEAK` of its traffic onto the shared bus.
        """
        rate = self.profile.traffic_rate_gbps(self.proc, self.start, self.end)
        if self.proc.dedicated_memory_path:
            rate *= DEDICATED_PATH_LEAK
        return rate / REFERENCE_BANDWIDTH_GBPS

    def sensitivity(self) -> float:
        """How strongly this workload suffers from bus pressure."""
        mem_frac = self.profile.memory_fraction(self.proc, self.start, self.end)
        sens = SENSITIVITY_BASE + SENSITIVITY_GAIN * mem_frac
        if self.proc.dedicated_memory_path:
            sens *= DEDICATED_PATH_SENSITIVITY
        return sens


def slowdown_fraction(
    soc: SocSpec, victim: SliceWorkload, co_runners: Iterable[SliceWorkload]
) -> float:
    """Fractional slowdown of ``victim`` given simultaneous co-runners.

    Returns ``(t_co - t_solo) / t_solo``; 0 when the victim runs alone.
    Co-runners on the same processor as the victim are rejected — the
    simulator never time-shares one unit between two slices.

    Raises:
        ValueError: if a co-runner shares the victim's processor name.
    """
    pressure = 0.0
    for co in co_runners:
        if co.proc.name == victim.proc.name:
            raise ValueError(
                f"co-runner and victim share processor {victim.proc.name!r}; "
                "the pipeline never time-shares a unit"
            )
        coupling = soc.coupling_factor(victim.proc.kind, co.proc.kind)
        pressure += coupling * co.intensity()
    if pressure <= 0.0:
        return 0.0
    exponent = pressure * victim.sensitivity()
    return MAX_SLOWDOWN * (1.0 - math.exp(-exponent))


def co_execution_ms(
    soc: SocSpec, victim: SliceWorkload, co_runners: Iterable[SliceWorkload]
) -> float:
    """Wall-clock time of the victim slice under co-execution (Eq. 2)."""
    solo = victim.solo_ms()
    if math.isinf(solo):
        return solo
    return solo * (1.0 + slowdown_fraction(soc, victim, list(co_runners)))


def pairwise_slowdown_table(
    soc: SocSpec,
    workload_a: SliceWorkload,
    workload_b: SliceWorkload,
) -> Tuple[float, float]:
    """Mutual slowdown fractions of two co-running workloads.

    Returns ``(slowdown_a, slowdown_b)`` — the Table II experiment.
    """
    return (
        slowdown_fraction(soc, workload_a, [workload_b]),
        slowdown_fraction(soc, workload_b, [workload_a]),
    )


def intra_cluster_slowdown(
    soc: SocSpec,
    victim: SliceWorkload,
    co_runner: SliceWorkload,
    victim_cores: int = 2,
    co_runner_cores: int = 2,
) -> float:
    """Slowdown when two workloads split cores of the *same* cluster.

    Models the Fig. 10 configurations ("BB-BB": YOLOv4 and VGG16 each on
    two Big cores; "BBB-B": a 3+1 split).  Both workloads also run
    slower from having fewer cores; this function returns only the
    *contention* component on top, using the intra-cluster coupling
    factor.  The shared L2 pressure a workload exerts scales with its
    share of the cluster's cores, so the minority side of an asymmetric
    split suffers more.

    Raises:
        ValueError: for non-positive core counts.
    """
    if victim_cores < 1 or co_runner_cores < 1:
        raise ValueError("core counts must be >= 1")
    coupling = soc.coupling_factor(victim.proc.kind, victim.proc.kind)
    total = victim_cores + co_runner_cores
    core_share = 2.0 * co_runner_cores / total  # 1.0 for an even split
    pressure = coupling * co_runner.intensity() * core_share
    if pressure <= 0.0:
        return 0.0
    return MAX_SLOWDOWN * (1.0 - math.exp(-pressure * victim.sensitivity()))
