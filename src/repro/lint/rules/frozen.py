"""H2P103 — don't mutate frozen-dataclass instances.

The codebase's convention (DESIGN.md): planner *outputs* and hardware
*specs* are ``@dataclass(frozen=True)`` so a plan audited by
``core.validate`` cannot drift before execution; only the two explicit
work-stealing containers (``StageAssignment`` / ``PipelinePlan``) are
mutable.  Assigning to ``self.attr`` inside a frozen class raises at
runtime anyway, but ``object.__setattr__`` silently bypasses the
freeze — this rule flags both so the escape hatch stays confined to
``__post_init__`` (the stdlib-sanctioned initialization idiom).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Finding, LintContext, LintRule, register_rule


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            fn = deco.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _self_attribute(target: ast.expr) -> Optional[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _is_object_setattr(node: ast.Call) -> bool:
    fn = node.func
    return (
        isinstance(fn, ast.Attribute)
        and fn.attr == "__setattr__"
        and isinstance(fn.value, ast.Name)
        and fn.value.id == "object"
    )


@register_rule
class FrozenMutationRule(LintRule):
    code = "H2P103"
    name = "no-frozen-dataclass-mutation"
    rationale = (
        "frozen plans/specs are the auditability contract between "
        "planner, validator and executor; object.__setattr__ outside "
        "__post_init__ silently breaks it"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef) or not _is_frozen_dataclass(cls):
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                in_post_init = item.name == "__post_init__"
                for node in ast.walk(item):
                    targets = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    for target in targets:
                        attr = _self_attribute(target)
                        if attr is not None:
                            yield self.finding(
                                ctx,
                                node,
                                f"assignment to 'self.{attr}' inside frozen "
                                f"dataclass {cls.name!r} (raises "
                                "FrozenInstanceError at runtime)",
                            )
                    if (
                        isinstance(node, ast.Call)
                        and _is_object_setattr(node)
                        and not in_post_init
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"object.__setattr__ in {cls.name}.{item.name} "
                            "bypasses the freeze; only __post_init__ may "
                            "use it",
                        )
