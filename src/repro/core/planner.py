"""The Hetero2Pipe planner facade: the paper's two-step optimization.

Orchestrates the full pipeline-planning flow of Fig. 3:

1. **Horizontal** (P1): each request is independently partitioned over
   the SoC's power-ordered processors by the Algorithm 1 DP.
2. **Contention scoring**: the Eq. 1 ridge estimator labels requests
   High/Low contention from their solo PMU features.
3. **Mitigation** (P3): Algorithm 2 re-orders the sequence so no
   contention window holds two High requests, at minimum displacement.
4. **Vertical** (P2): Algorithm 3 steals boundary layers between stages
   to align co-running slices with the critical path, then exhaustively
   re-places the draining tail.

Each step can be disabled for the paper's ablations (the "No C/T"
baseline disables mitigation and tail optimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..models.zoo import all_models
from ..profiling.profiler import ModelProfile, SocProfiler
from ..runtime.schedule import async_makespan_ms
from .contention import ContentionEstimator, ContentionScore
from .mitigation import MitigationResult, mitigate_sequence
from .objective import LRUCache, ObjectiveCache
from .partition import PartitionResult, partition_model
from .plan import PipelinePlan, StageAssignment
from .stealing import optimize_tail, vertical_alignment

#: Default bound on memoized whole-plan reports (requests mixes).
DEFAULT_PLAN_CACHE_SIZE = 64


@dataclass(frozen=True)
class PlannerConfig:
    """Feature switches and knobs of the planner.

    Attributes:
        enable_mitigation: Run Algorithm 2 request re-ordering.
        enable_work_stealing: Run Algorithm 3 phase 1.
        enable_tail_optimization: Run Algorithm 3 phase 2.
        threshold_percentile: H/L split percentile for the estimator.
        fast_dp: Use the monotonicity-accelerated DP (copy-free costs
            only); the exact DP is the default.
        enable_objective_cache: Memoize the vertical phase's objective
            probes (``async_makespan_ms``) under the plan fingerprint,
            so re-probed configurations skip the re-simulation.  Pure
            memoization of a deterministic function: the emitted plan
            is byte-identical either way.
        enable_plan_cache: Keep a bounded LRU of finished
            :class:`PlanReport` objects keyed by the request mix, so
            online re-planning of a recurring mix is a lookup.
        plan_cache_size: LRU bound for the plan cache.
    """

    enable_mitigation: bool = True
    enable_work_stealing: bool = True
    enable_tail_optimization: bool = True
    threshold_percentile: float = 60.0
    fast_dp: bool = False
    enable_objective_cache: bool = True
    enable_plan_cache: bool = True
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE

    @classmethod
    def no_contention_or_tail(cls) -> "PlannerConfig":
        """The paper's "Hetero2Pipe (No C/T)" ablation."""
        return cls(enable_mitigation=False, enable_tail_optimization=False)

    @classmethod
    def uncached(cls) -> "PlannerConfig":
        """Everything enabled but every cache off — the planner always
        re-simulates and re-plans from scratch (benchmark baseline)."""
        return cls(enable_objective_cache=False, enable_plan_cache=False)


@dataclass
class PlanReport:
    """Planner output bundle: the plan plus per-step diagnostics."""

    plan: PipelinePlan
    partitions: List[PartitionResult]
    scores: List[ContentionScore]
    mitigation: Optional[MitigationResult]
    stealing_moves: int
    tail_changed: bool

    def clone(self) -> "PlanReport":
        """An isolated copy: the mutable plan is deep-copied, the frozen
        diagnostics (partitions, scores, mitigation) are shared."""
        return PlanReport(
            plan=self.plan.copy(),
            partitions=list(self.partitions),
            scores=list(self.scores),
            mitigation=self.mitigation,
            stealing_moves=self.stealing_moves,
            tail_changed=self.tail_changed,
        )


#: Plan-cache key: (soc, per-request (model name, layer count), config).
PlanCacheKey = Tuple[str, Tuple[Tuple[str, int], ...], PlannerConfig]


class Hetero2PipePlanner:
    """Plans multi-DNN pipelines on one SoC.

    The planner owns three memoization layers (see docs/PERFORMANCE.md):
    the profiler's per-model profile cache (shared with the estimator's
    zoo fit), a per-``(model, fast_dp)`` horizontal-partition cache, and
    an :class:`~repro.core.objective.ObjectiveCache` that deduplicates
    the vertical phase's re-simulations.  A bounded LRU of whole
    :class:`PlanReport` objects sits in front of :meth:`plan` for
    recurring request mixes.  All caches are scoped to this instance —
    building a planner for a new/modified :class:`SocSpec` starts cold.

    Args:
        soc: Target platform.
        config: Feature switches; defaults to everything enabled.
        estimator: Contention estimator; by default one is fitted on the
            ten-model zoo profiled on this SoC (the paper's offline
            regression step), reusing this planner's profiler so the zoo
            profiles are measured once.
    """

    def __init__(
        self,
        soc: SocSpec,
        config: Optional[PlannerConfig] = None,
        estimator: Optional[ContentionEstimator] = None,
    ) -> None:
        self.soc = soc
        self.config = config or PlannerConfig()
        self.profiler = SocProfiler(soc)
        self.estimator = estimator or ContentionEstimator.fit_from_zoo(
            soc,
            all_models(),
            threshold_percentile=self.config.threshold_percentile,
            profiler=self.profiler,
        )
        self._partition_cache: Dict[Tuple[str, bool], PartitionResult] = {}
        self.objective: Callable[[PipelinePlan], float] = (
            ObjectiveCache() if self.config.enable_objective_cache
            else async_makespan_ms
        )
        self._plan_cache: Optional[LRUCache[PlanCacheKey, PlanReport]] = (
            LRUCache(self.config.plan_cache_size)
            if self.config.enable_plan_cache
            else None
        )

    def invalidate_caches(self) -> None:
        """Drop every memoized prediction this planner has accumulated.

        The replan/re-profile trigger: after a ``DriftDetected`` event
        the cached partitions, objective probes and finished plans all
        embed predictions the drift just falsified, so the streaming
        layer clears them before planning the next window.  Profiles on
        the shared profiler are *measurements*, not predictions, and are
        kept.
        """
        self._partition_cache.clear()
        if isinstance(self.objective, ObjectiveCache):
            self.objective.clear()
        if self._plan_cache is not None:
            self._plan_cache.clear()
        obs.add("planner_cache_invalidations")

    def _partition(self, profile: ModelProfile) -> PartitionResult:
        """Horizontal DP for one request, memoized per (model, fast_dp).

        Sound because profiles come from this planner's profiler (one
        immutable profile per model name) and ``partition_model`` is a
        deterministic function of (profile, processors, fast); results
        are frozen and safely shared across plans.
        """
        key = (profile.model.name, self.config.fast_dp)
        cached = self._partition_cache.get(key)
        if cached is not None:
            obs.add("partition_cache_hits")
            return cached
        obs.add("partition_cache_misses")
        result = partition_model(
            profile, self.soc.processors, fast=self.config.fast_dp
        )
        self._partition_cache[key] = result
        return result

    def plan(self, models: Sequence[ModelGraph]) -> PlanReport:
        """Produce a pipeline plan for a request sequence.

        Args:
            models: Requests in arrival order.

        Returns:
            A :class:`PlanReport`; ``report.plan`` is ready for the
            executor.

        Raises:
            ValueError: on an empty request sequence or an unplaceable
                model.
        """
        if not models:
            raise ValueError("request sequence must be non-empty")
        cache_key: Optional[PlanCacheKey] = None
        if self._plan_cache is not None:
            cache_key = (
                self.soc.name,
                tuple((m.name, m.num_layers) for m in models),
                self.config,
            )
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                obs.add("plan_cache_hits")
                return cached.clone()
            obs.add("plan_cache_misses")
        rec = obs.get_recorder()
        processors = self.soc.processors
        with obs.span(
            "plan", requests=len(models), soc=self.soc.name
        ) as root:
            with obs.span("plan.profile", requests=len(models)):
                profiles = [self.profiler.profile(m) for m in models]

            # Step 1 — horizontal DP per request (P1).
            partitions = [self._partition(p) for p in profiles]
            if rec.enabled:
                for i, part in enumerate(partitions):
                    obs.emit(
                        obs.SliceChosen(
                            request=i,
                            model=models[i].name,
                            slices=part.slices,
                            stage_times_ms=part.stage_times_ms,
                            makespan_ms=part.makespan_ms,
                        )
                    )

            # Step 2 — contention scoring (Eq. 1).
            scores = self.estimator.classify(profiles)

            # Step 3 — mitigation re-ordering (P3 / Algorithm 2).  Both
            # the arrival order and the mitigated order are carried
            # through the vertical phase; the planner commits to
            # whichever yields the smaller contention-aware makespan, so
            # re-ordering is only ever accepted when it actually pays
            # for its displacement.
            mitigation: Optional[MitigationResult] = None
            candidate_orders: List[Tuple[int, ...]] = [
                tuple(range(len(models)))
            ]
            if self.config.enable_mitigation and len(models) > 1:
                labels = [s.is_high for s in scores]
                mitigation = mitigate_sequence(labels, len(processors))
                if mitigation.order != candidate_orders[0]:
                    candidate_orders.append(mitigation.order)

            # Provenance from each candidate's vertical phase is held in
            # a buffer; only the winner's buffer is committed, so the
            # event log describes exactly the plan that shipped (metrics
            # bypass the buffer — they count all work performed).
            best: Optional[Tuple[float, PipelinePlan, int, bool, int]] = None
            costs: List[float] = []
            buffers: List[List[obs.ProvenanceEvent]] = []
            for index, order in enumerate(candidate_orders):
                with rec.buffered() as buffer, obs.span(
                    "plan.candidate", order=list(order)
                ) as sp:
                    plan = PipelinePlan(
                        soc=self.soc,
                        processors=tuple(processors),
                        assignments=[
                            StageAssignment(
                                profile=profiles[i],
                                slices=list(partitions[i].slices),
                            )
                            for i in order
                        ],
                        order=order,
                    )
                    # Step 4 — vertical alignment (P2 / Algorithm 3).
                    moves, tail_changed = 0, False
                    if self.config.enable_work_stealing:
                        moves, tail_changed = vertical_alignment(
                            plan,
                            enable_tail_optimization=(
                                self.config.enable_tail_optimization
                            ),
                            objective=self.objective,
                        )
                    elif self.config.enable_tail_optimization:
                        tail_changed = optimize_tail(
                            plan, objective=self.objective
                        )
                    cost = self.objective(plan)
                    sp.set(makespan_ms=cost, moves=moves)
                costs.append(cost)
                buffers.append(buffer)
                if best is None or cost < best[0]:
                    best = (cost, plan, moves, tail_changed, index)

            assert best is not None
            cost, plan, moves, tail_changed, winner = best
            mitigated = winner > 0
            if rec.enabled:
                if mitigated and mitigation is not None:
                    for mv in mitigation.moves:
                        obs.emit(
                            obs.RequestRelocated(
                                request=mv.item,
                                source_position=mv.source_position,
                                target_position=mv.target_position,
                                displacement=mv.cost,
                            )
                        )
                obs.emit(
                    obs.OrderCommitted(
                        order=plan.order,
                        arrival_makespan_ms=costs[0],
                        chosen_makespan_ms=cost,
                        mitigated=mitigated,
                    )
                )
                rec.commit(buffers[winner])
                obs.set_gauge("last_plan_makespan_ms", cost)
            root.set(makespan_ms=cost, mitigated=mitigated)
            plan.validate()
        report = PlanReport(
            plan=plan,
            partitions=partitions,
            scores=scores,
            mitigation=mitigation,
            stealing_moves=moves,
            tail_changed=tail_changed,
        )
        if self._plan_cache is not None and cache_key is not None:
            # Snapshot before handing out: callers may mutate the plan.
            self._plan_cache.put(cache_key, report.clone())
        return report
