"""Tests for the comparison framework, profile reports and scaling study."""

import pytest

from repro.experiments.ext_scaling import (
    run_request_scaling,
    run_size_scaling,
)
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.report import profile_report, render_report
from repro.profiling.profiler import SocProfiler
from repro.runtime.metrics import (
    ComparisonMatrix,
    Scheme,
    compare_schemes,
    standard_schemes,
)


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


class TestComparisonFramework:
    @pytest.fixture(scope="class")
    def matrix(self, kirin):
        schemes = standard_schemes(kirin)
        workloads = [
            [get_model(n) for n in ("vit", "resnet50")],
            [get_model(n) for n in ("bert", "squeezenet", "googlenet")],
        ]
        return compare_schemes(schemes, workloads)

    def test_shape(self, matrix):
        assert matrix.num_workloads == 2
        assert set(matrix.scheme_names) == {
            "mnn", "pipe_it", "band", "h2p_no_ct", "h2p",
        }

    def test_speedup_summary(self, matrix):
        gm, hi, lo = matrix.speedup_summary("mnn", "h2p")
        assert lo <= gm <= hi
        assert gm > 1.0

    def test_leaderboard_sorted(self, matrix):
        board = matrix.leaderboard()
        values = [v for _, v in board]
        assert values == sorted(values)
        assert board[0][0] in ("h2p", "band", "h2p_no_ct")

    def test_win_rate_bounds(self, matrix):
        rate = matrix.win_rate("h2p", "mnn")
        assert rate == 1.0
        assert 0.0 <= matrix.win_rate("mnn", "h2p") <= 1.0

    def test_mean_metrics_positive(self, matrix):
        for name in matrix.scheme_names:
            assert matrix.mean_latency_ms(name) > 0
            assert matrix.mean_throughput(name) > 0

    def test_validation(self, kirin):
        with pytest.raises(ValueError):
            compare_schemes([], [[get_model("vit")]])
        scheme = standard_schemes(kirin)[0]
        with pytest.raises(ValueError):
            compare_schemes([scheme], [])
        with pytest.raises(ValueError):
            compare_schemes([scheme, scheme], [[get_model("vit")]])


class TestProfileReport:
    def test_report_covers_all_layers(self, kirin):
        model = get_model("resnet50")
        report = profile_report(model, kirin)
        assert len(report.layers) == model.num_layers
        assert report.total_latency_ms > 0

    def test_memory_bound_fraction_bounds(self, kirin):
        for name in ("alexnet", "vgg16", "mobilenetv2"):
            report = profile_report(get_model(name), kirin)
            assert 0.0 <= report.memory_bound_fraction <= 1.0

    def test_alexnet_fc_layers_memory_bound(self, kirin):
        # Observation 2: AlexNet's FC layers dominate traffic.
        report = profile_report(get_model("alexnet"), kirin)
        top_traffic = report.highest_traffic_layers(2)
        assert all(l.op == "fully_connected" for l in top_traffic)
        assert any(l.memory_bound for l in top_traffic)

    def test_hottest_layers_sorted(self, kirin):
        report = profile_report(get_model("vgg16"), kirin)
        hottest = report.hottest_layers(4)
        times = [l.latency_ms for l in hottest]
        assert times == sorted(times, reverse=True)

    def test_npu_incompatible_model_rejected_on_npu(self, kirin):
        with pytest.raises(ValueError):
            profile_report(get_model("bert"), kirin, processor_name="npu")

    def test_unknown_processor(self, kirin):
        with pytest.raises(KeyError):
            profile_report(get_model("vit"), kirin, processor_name="dsp")

    def test_render_contains_summary(self, kirin):
        report = profile_report(get_model("squeezenet"), kirin)
        text = render_report(report, top=3)
        assert "memory-bound" in text
        assert "squeezenet" in text


class TestScalingStudy:
    def test_throughput_plateaus(self, kirin):
        points = run_request_scaling(kirin, counts=(4, 8, 16))
        # Longer streams amortize fill/drain: throughput non-decreasing
        # (within tolerance) after the first point.
        assert points[-1].throughput_per_s >= points[0].throughput_per_s * 0.95

    def test_latency_grows_with_count(self, kirin):
        points = run_request_scaling(kirin, counts=(2, 8))
        assert points[1].latency_ms > points[0].latency_ms

    def test_size_scaling_tiers(self, kirin):
        points = run_size_scaling(kirin)
        assert [p.tier for p in points] == ["small", "base", "large"]
        for point in points:
            assert point.speedup > 1.0
            assert point.h2p_ms < point.serial_ms
