"""Energy model for heterogeneous mobile execution (extension).

The paper motivates mobile pipelining partly through energy ("energy
efficiency also demands low bandwidth designs...") but reports no energy
numbers; this module adds the standard mobile-SoC energy accounting as a
documented extension so schedules can be compared on Joules as well as
milliseconds.

Model: each processor draws ``idle_w`` whenever powered and an
additional ``active_w`` while executing; the shared memory subsystem
adds ``dram_pj_per_byte`` per byte moved.  Values follow published
mobile measurements: a big ARM cluster burns ~2-3 W active, the small
cluster a few hundred mW, embedded GPUs ~2 W, NPUs deliver far better
energy-per-inference than CPUs at similar latency, and LPDDR4X costs
roughly 60-120 pJ/byte end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, TYPE_CHECKING

from .processor import ProcessorKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.executor import ExecutionResult


@dataclass(frozen=True)
class PowerSpec:
    """Static power parameters of one processor class."""

    idle_w: float
    active_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w < 0:
            raise ValueError("power values must be non-negative")


#: Default per-kind power draw (Watts).
DEFAULT_POWER: Dict[ProcessorKind, PowerSpec] = {
    ProcessorKind.CPU_BIG: PowerSpec(idle_w=0.15, active_w=2.80),
    ProcessorKind.CPU_SMALL: PowerSpec(idle_w=0.05, active_w=0.45),
    ProcessorKind.GPU: PowerSpec(idle_w=0.10, active_w=2.20),
    ProcessorKind.NPU: PowerSpec(idle_w=0.08, active_w=1.60),
}

#: DRAM access energy, picojoules per byte (LPDDR4X class).
DRAM_PJ_PER_BYTE = 90.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one simulated run, by component (millijoules)."""

    active_mj: Dict[str, float]
    idle_mj: Dict[str, float]
    dram_mj: float

    @property
    def compute_mj(self) -> float:
        return sum(self.active_mj.values()) + sum(self.idle_mj.values())

    @property
    def total_mj(self) -> float:
        return self.compute_mj + self.dram_mj

    def per_inference_mj(self, num_requests: int) -> float:
        """Average energy per completed inference.

        Raises:
            ValueError: for non-positive request counts.
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        return self.total_mj / num_requests


def estimate_energy(
    result: "ExecutionResult",
    soc,
    power: Dict[ProcessorKind, PowerSpec] = DEFAULT_POWER,
    dram_pj_per_byte: float = DRAM_PJ_PER_BYTE,
) -> EnergyBreakdown:
    """Energy of a simulated execution.

    Active energy integrates each processor's busy time; idle energy
    covers the remainder of the makespan (the unit is powered while the
    pipeline runs); DRAM energy charges every byte of effective traffic
    the executed slices moved.

    Args:
        result: An :class:`~repro.runtime.executor.ExecutionResult`.
        soc: The :class:`~repro.hardware.soc.SocSpec` it ran on.
        power: Per-kind power table (override for what-if studies).
        dram_pj_per_byte: Memory access energy.

    Returns:
        The :class:`EnergyBreakdown` in millijoules.
    """
    active: Dict[str, float] = {}
    idle: Dict[str, float] = {}
    for proc in soc.processors:
        spec = power[proc.kind]
        busy_ms = result.processor_busy_ms.get(proc.name, 0.0)
        idle_ms = max(0.0, result.makespan_ms - busy_ms)
        # W * ms == mJ.
        active[proc.name] = spec.active_w * busy_ms
        idle[proc.name] = spec.idle_w * idle_ms

    traffic_bytes = sum(record.traffic_bytes for record in result.records)
    # pJ/byte * bytes = pJ; 1e-9 converts to mJ.
    dram_mj = traffic_bytes * dram_pj_per_byte * 1e-9
    return EnergyBreakdown(active_mj=active, idle_mj=idle, dram_mj=dram_mj)
