"""Execution-trace export: Chrome trace JSON and ASCII Gantt charts.

Turns an :class:`~repro.runtime.executor.ExecutionResult` into artifacts
a human can inspect: the Chrome tracing format (open ``chrome://tracing``
or Perfetto and drop the file in) and a terminal Gantt rendering used by
the examples.  Both views make pipeline bubbles visible as gaps in a
processor's row.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionResult


def to_chrome_trace(
    result: "ExecutionResult",
    request_names: Optional[Sequence[str]] = None,
) -> str:
    """Serialize a run as a Chrome trace (JSON string).

    Args:
        result: The simulated execution.
        request_names: Optional display names per request (model names);
            defaults to ``request <i>``.

    Returns:
        A JSON document in the Chrome tracing "traceEvents" format with
        one track (tid) per processor; durations are microseconds.

    Raises:
        ValueError: if ``request_names`` has the wrong length.
    """
    if request_names is not None and len(request_names) != result.num_requests:
        raise ValueError(
            f"expected {result.num_requests} names, got {len(request_names)}"
        )

    def name_of(request: int) -> str:
        if request_names is not None:
            return request_names[request]
        return f"request {request}"

    processors = sorted({r.processor for r in result.records})
    tids = {name: i for i, name in enumerate(processors)}
    events: List[Dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": proc},
        }
        for proc, tid in tids.items()
    ]
    for rec in sorted(result.records, key=lambda r: r.start_ms):
        events.append(
            {
                "name": f"{name_of(rec.request)} / stage {rec.stage}",
                "cat": "slice",
                "ph": "X",
                "pid": 0,
                "tid": tids[rec.processor],
                "ts": rec.start_ms * 1000.0,
                "dur": rec.duration_ms * 1000.0,
                "args": {
                    "request": rec.request,
                    "solo_ms": rec.solo_ms,
                    "slowdown": round(rec.slowdown, 4),
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def ascii_gantt(
    result: "ExecutionResult",
    request_names: Optional[Sequence[str]] = None,
    width: int = 72,
) -> str:
    """Render the run as a terminal Gantt chart.

    One row per processor; each request's slices are drawn with its
    digit/letter; idle time shows as dots (the visible bubbles).

    Raises:
        ValueError: for non-positive width or misfit names.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if request_names is not None and len(request_names) != result.num_requests:
        raise ValueError(
            f"expected {result.num_requests} names, got {len(request_names)}"
        )
    span = result.makespan_ms
    if span <= 0:
        return "(empty run)"

    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    processors = sorted({r.processor for r in result.records})
    label_width = max(len(p) for p in processors)
    lines = []
    for proc in processors:
        row = ["."] * width
        for rec in result.records:
            if rec.processor != proc:
                continue
            lo = int(rec.start_ms / span * width)
            hi = max(lo + 1, int(rec.finish_ms / span * width))
            glyph = glyphs[rec.request % len(glyphs)]
            for pos in range(lo, min(hi, width)):
                row[pos] = glyph
        lines.append(f"{proc:<{label_width}s} |{''.join(row)}|")
    legend = ", ".join(
        f"{glyphs[i % len(glyphs)]}={request_names[i] if request_names else i}"
        for i in range(result.num_requests)
    )
    lines.append(f"{'':<{label_width}s}  0 ms {'-' * (width - 16)} {span:.0f} ms")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def write_chrome_trace(
    result: "ExecutionResult",
    path: str,
    request_names: Optional[Sequence[str]] = None,
) -> None:
    """Write the Chrome trace JSON to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_chrome_trace(result, request_names))
