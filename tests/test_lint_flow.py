"""Tests for the dataflow lint layer and its surrounding machinery.

Covers the ``repro.lint.flow`` package (CFG lowering, unit lattice,
abstract interpretation), the dataflow-backed rule families (H2P11x
units, H2P12x concurrency/determinism), the H2P109 unused-pragma
check with its edge cases, the SARIF 2.1.0 reporter shape, and the
baseline ratchet (tolerate / new / stale / regenerate).

Every rule family gets at least one deliberately-seeded true positive
AND a conforming-code negative — the acceptance criteria of the
dataflow-lint change.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_SCHEMA,
    Finding,
    apply_baseline,
    collect_pragmas,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.lint.baseline import BaselineResult, baseline_key
from repro.lint.cli import main as lint_main, normalize_finding_paths
from repro.lint.engine import (
    UNUSED_SUPPRESSION_CODE,
    apply_suppressions,
    lint_source,
)
from repro.lint.flow import (
    Unit,
    UnitAnalysis,
    build_cfg,
    run_forward,
)
from repro.lint.flow.lattice import (
    additive_compatible,
    join,
    suffix_unit,
    unit_of_add,
    unit_of_div,
    unit_of_mul,
)
from repro.lint.reporters import (
    JSON_SCHEMA,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_json,
)


def _codes(source, module="repro.core.sample"):
    findings = lint_source(source, path="<fixture>", module=module)
    return {f.code for f in findings}, findings


# ------------------------------------------------------------- unit lattice


class TestUnitLattice:
    def test_suffix_inference_longest_first(self):
        assert suffix_unit("makespan_ms") is Unit.MS
        assert suffix_unit("elapsed_s") is Unit.S
        assert suffix_unit("throughput_per_s") is Unit.PER_S  # not _s
        assert suffix_unit("clock_mhz") is Unit.MHZ  # not _hz
        assert suffix_unit("size_mb") is Unit.MB
        assert suffix_unit("slowdown_x") is Unit.RATIO
        assert suffix_unit("stage_count") is Unit.COUNT
        assert suffix_unit("plain_name") is Unit.BOTTOM

    def test_join_is_lub(self):
        assert join(Unit.BOTTOM, Unit.MS) is Unit.MS
        assert join(Unit.MS, Unit.BOTTOM) is Unit.MS
        assert join(Unit.MS, Unit.MS) is Unit.MS
        assert join(Unit.MS, Unit.MB) is Unit.TOP
        assert join(Unit.TOP, Unit.MS) is Unit.TOP

    def test_additive_compatibility(self):
        # Definite-vs-definite mismatch is the only incompatibility.
        assert not additive_compatible(Unit.MS, Unit.MB)
        assert not additive_compatible(Unit.MS, Unit.S)  # scale mixing
        assert additive_compatible(Unit.MS, Unit.MS)
        assert additive_compatible(Unit.MS, Unit.BOTTOM)
        assert additive_compatible(Unit.TOP, Unit.MB)
        # Dimensionless units mix freely with each other only.
        assert additive_compatible(Unit.RATIO, Unit.COUNT)
        assert not additive_compatible(Unit.RATIO, Unit.MS)

    def test_arithmetic_transfer(self):
        assert unit_of_add(Unit.MS, Unit.MS) is Unit.MS
        assert unit_of_add(Unit.MS, Unit.MB) is Unit.TOP
        # Eq. 1 of the paper: latency * slowdown ratio stays a latency.
        assert unit_of_mul(Unit.MS, Unit.RATIO) is Unit.MS
        assert unit_of_mul(Unit.RATIO, Unit.MS) is Unit.MS
        assert unit_of_mul(Unit.MS, Unit.MB) is Unit.TOP
        # Like / like is a ratio; unit / factor keeps the unit.
        assert unit_of_div(Unit.MS, Unit.MS) is Unit.RATIO
        assert unit_of_div(Unit.MS, Unit.COUNT) is Unit.MS
        assert unit_of_div(Unit.MS, Unit.MB) is Unit.TOP


# --------------------------------------------------------------------- CFG


def _cfg_of(source):
    return build_cfg(ast.parse(source).body)


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = _cfg_of("a = 1\nb = a\nc = b\n")
        reachable = cfg.reachable_ids()
        assert cfg.entry_id in reachable
        assert cfg.exit_id in reachable
        assert len(cfg.entry.elements) == 3

    def test_if_creates_branch_and_join(self):
        cfg = _cfg_of("if cond:\n    a = 1\nelse:\n    a = 2\nb = a\n")
        # Entry branches to both arms; both arms rejoin before exit.
        assert len(cfg.entry.successors) == 2

    def test_while_has_back_edge(self):
        cfg = _cfg_of("while cond:\n    x = 1\ny = 2\n")
        header_ids = [
            bid
            for bid in cfg.reachable_ids()
            for succ in cfg.blocks[bid].successors
            if succ == bid or bid in cfg.blocks[succ].successors
        ]
        assert header_ids, "loop must produce a cycle in the graph"

    def test_return_edges_to_exit_and_kills_fallthrough(self):
        cfg = _cfg_of("return 1\nx = 2\n")
        assert cfg.exit_id in cfg.entry.successors
        # The statement after return is lowered but unreachable.
        assert not any(
            "x" in ast.dump(e)
            for bid in cfg.reachable_ids()
            for e in cfg.blocks[bid].elements
        )

    def test_try_handler_sees_pre_try_state(self):
        cfg = _cfg_of(
            "try:\n    a = 1\nexcept ValueError:\n    b = 2\nc = 3\n"
        )
        # The pre-try block must edge into the handler chain: an
        # exception can fire before any body statement ran.
        handler_blocks = [
            bid
            for bid in cfg.reachable_ids()
            if any(
                isinstance(e, ast.ExceptHandler)
                for e in cfg.blocks[bid].elements
            )
        ]
        assert handler_blocks
        assert any(
            h in cfg.entry.successors or h in cfg.blocks[0].successors
            for h in handler_blocks
        ) or any(
            h in cfg.blocks[b].successors
            for b in cfg.reachable_ids()
            for h in handler_blocks
        )

    def test_run_forward_reaches_fixpoint_on_loop(self):
        cfg = _cfg_of("x = a_ms\nwhile cond:\n    x = b_mb\ny = x\n")

        def transfer(element, state):
            analysis = UnitAnalysis()
            return analysis.transfer(element, state)

        in_states = run_forward(cfg, transfer)
        exit_state = in_states.get(cfg.exit_id, {})
        # ms on the no-iteration path, MB after an iteration: joined TOP.
        assert exit_state.get("x") is Unit.TOP


# --------------------------------------------------------- unit analysis


class TestUnitAnalysis:
    def test_clean_function_no_violations(self):
        body = ast.parse(
            "total_ms = stage_ms + wait_ms\n"
            "slow_ms = stage_ms * slowdown_x\n"
            "frac = bubble_ms / total_ms\n"
        ).body
        analysis = UnitAnalysis().analyze(body)
        assert analysis.violations == []

    def test_mixed_add_flags(self):
        body = ast.parse("bad = makespan_ms + size_mb\n").body
        analysis = UnitAnalysis().analyze(body)
        assert len(analysis.violations) == 1
        v = analysis.violations[0]
        assert (v.left, v.right) == (Unit.MS, Unit.MB)
        assert v.operation == "+"

    def test_propagation_through_unsuffixed_local(self):
        # The dataflow part: t has no suffix, but carries ms.
        body = ast.parse("t = makespan_ms\nbad = t + size_mb\n").body
        analysis = UnitAnalysis().analyze(body)
        assert len(analysis.violations) == 1

    def test_numeric_literal_conversion_is_agnostic(self):
        # ns / 1e6 is a conversion — must NOT flag downstream.
        body = ast.parse(
            "t_ms = elapsed_ns / 1e6\nok = t_ms + wait_ms\n"
        ).body
        analysis = UnitAnalysis().analyze(body)
        assert analysis.violations == []

    def test_branch_join_conflicting_units_never_flags(self):
        # x is ms on one path, MB on the other -> TOP; TOP never flags.
        body = ast.parse(
            "if cond:\n    x = a_ms\nelse:\n    x = b_mb\n"
            "y = x + c_ms\n"
        ).body
        analysis = UnitAnalysis().analyze(body)
        assert analysis.violations == []

    def test_params_seeded_from_suffix(self):
        body = ast.parse("return latency_ms + size_mb\n").body
        analysis = UnitAnalysis().analyze(
            body, params=["latency_ms", "size_mb"]
        )
        assert len(analysis.violations) == 1

    def test_returns_collected_with_units(self):
        body = ast.parse("return stage_ms + wait_ms\n").body
        analysis = UnitAnalysis().analyze(body)
        assert len(analysis.returns) == 1
        _, unit = analysis.returns[0]
        assert unit is Unit.MS

    def test_compare_mismatch_flags(self):
        body = ast.parse("flag = makespan_ms > budget_mj\n").body
        analysis = UnitAnalysis().analyze(body)
        assert len(analysis.violations) == 1
        assert analysis.violations[0].operation == ">"


# ------------------------------------------------- H2P11x rule family


class TestUnitFlowRules:
    def test_h2p110_mixed_arithmetic_seeded_positive(self):
        codes, findings = _codes(
            "def total(makespan_ms, size_mb):\n"
            "    return makespan_ms + size_mb\n",
            module="repro.core.sample",
        )
        assert "H2P110" in codes
        (finding,) = [f for f in findings if f.code == "H2P110"]
        assert "ms" in finding.message and "MB" in finding.message

    def test_h2p110_dataflow_positive_through_temporary(self):
        codes, _ = _codes(
            "def total(makespan_ms, size_mb):\n"
            "    t = makespan_ms\n"
            "    return t + size_mb\n",
            module="repro.runtime.sample",
        )
        assert "H2P110" in codes

    def test_h2p110_clean_on_conforming_code(self):
        codes, _ = _codes(
            "def eq1(base_ms, slowdown_x):\n"
            "    return base_ms * slowdown_x\n"
            "def share(bubble_ms, makespan_ms):\n"
            "    return bubble_ms / makespan_ms\n",
            module="repro.core.sample",
        )
        assert "H2P110" not in codes

    def test_h2p110_out_of_scope_package_ignored(self):
        codes, _ = _codes(
            "def total(makespan_ms, size_mb):\n"
            "    return makespan_ms + size_mb\n",
            module="repro.viz.sample",
        )
        assert "H2P110" not in codes

    def test_h2p111_return_contradicts_suffix(self):
        codes, findings = _codes(
            "def duration_ms(size_mb):\n"
            "    return size_mb\n",
            module="repro.hardware.sample",
        )
        assert "H2P111" in codes

    def test_h2p111_matching_return_clean(self):
        codes, _ = _codes(
            "def duration_ms(start_ms, finish_ms):\n"
            "    return finish_ms - start_ms\n",
            module="repro.hardware.sample",
        )
        assert "H2P111" not in codes

    def test_h2p111_dimensionless_return_tolerated(self):
        # Returning an untyped expression from a _ms function is fine —
        # only a definite contradiction flags.
        codes, _ = _codes(
            "def duration_ms(raw):\n"
            "    return raw * 2\n",
            module="repro.core.sample",
        )
        assert "H2P111" not in codes


# ------------------------------------------------- H2P12x rule family


class TestAsyncBlockingRule:
    def test_h2p120_time_sleep_in_async_def(self):
        codes, findings = _codes(
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1)\n",
            module="repro.runtime.sample",
        )
        assert "H2P120" in codes
        (finding,) = [f for f in findings if f.code == "H2P120"]
        assert "asyncio.sleep" in finding.message

    def test_h2p120_subprocess_and_open(self):
        codes, _ = _codes(
            "import subprocess\n"
            "async def run():\n"
            "    subprocess.run(['ls'])\n"
            "    with open('f') as fh:\n"
            "        return fh.read()\n",
            module="repro.core.sample",
        )
        assert "H2P120" in codes

    def test_h2p120_sync_def_not_flagged(self):
        codes, _ = _codes(
            "import time\n"
            "def poll():\n"
            "    time.sleep(1)\n",
            module="repro.runtime.sample",
        )
        assert "H2P120" not in codes

    def test_h2p120_nested_sync_def_inside_async_not_flagged(self):
        codes, _ = _codes(
            "import time\n"
            "async def outer():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    return helper\n",
            module="repro.runtime.sample",
        )
        assert "H2P120" not in codes

    def test_h2p120_asyncio_sleep_clean(self):
        codes, _ = _codes(
            "import asyncio\n"
            "async def poll():\n"
            "    await asyncio.sleep(1)\n",
            module="repro.runtime.sample",
        )
        assert "H2P120" not in codes


class TestDeterminismRules:
    def test_h2p121_unseeded_default_rng(self):
        codes, _ = _codes(
            "import numpy as np\n"
            "def jitter():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.normal()\n",
            module="repro.core.sample",
        )
        assert "H2P121" in codes

    def test_h2p121_seeded_rng_clean(self):
        codes, _ = _codes(
            "import numpy as np\n"
            "def jitter(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.normal()\n",
            module="repro.core.sample",
        )
        assert "H2P121" not in codes

    def test_h2p121_global_random_module_calls(self):
        codes, _ = _codes(
            "import random\n"
            "def pick(xs):\n"
            "    return random.choice(xs)\n",
            module="repro.workloads.sample",
        )
        assert "H2P121" in codes

    def test_h2p121_out_of_scope_package_ignored(self):
        codes, _ = _codes(
            "import random\n"
            "def pick(xs):\n"
            "    return random.choice(xs)\n",
            module="repro.viz.sample",
        )
        assert "H2P121" not in codes

    def test_h2p122_global_statement_write(self):
        codes, findings = _codes(
            "_CACHE = {}\n"
            "_MODE = 'idle'\n"
            "def set_mode(mode):\n"
            "    global _MODE\n"
            "    _MODE = mode\n",
            module="repro.runtime.sample",
        )
        assert "H2P122" in codes

    def test_h2p122_mutator_call_on_module_global(self):
        codes, _ = _codes(
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n",
            module="repro.core.sample",
        )
        assert "H2P122" in codes

    def test_h2p122_local_shadow_not_flagged(self):
        codes, _ = _codes(
            "_CACHE = {}\n"
            "def pure(key, value):\n"
            "    _CACHE = {}\n"
            "    _CACHE[key] = value\n"
            "    return _CACHE\n",
            module="repro.core.sample",
        )
        assert "H2P122" not in codes

    def test_h2p122_read_only_access_clean(self):
        codes, _ = _codes(
            "_DEFAULTS = {'mode': 'pipelined'}\n"
            "def mode():\n"
            "    return _DEFAULTS['mode']\n",
            module="repro.runtime.sample",
        )
        assert "H2P122" not in codes


# --------------------------------------------------- pragma edge cases


class TestPragmaEdgeCases:
    BAD_ASYNC = (
        "import time\n"
        "async def poll():\n"
        "    time.sleep(1)  {pragma}\n"
    )

    def test_disable_all_suppresses_everything(self):
        findings = lint_source(
            self.BAD_ASYNC.format(pragma="# lint: disable=all"),
            path="<fixture>",
            module="repro.runtime.sample",
        )
        assert not any(f.code == "H2P120" for f in findings)
        # The pragma matched a real finding: no H2P109 either.
        assert not any(
            f.code == UNUSED_SUPPRESSION_CODE for f in findings
        )

    def test_comma_separated_codes(self):
        findings = lint_source(
            self.BAD_ASYNC.format(pragma="# lint: disable=H2P120,H2P121"),
            path="<fixture>",
            module="repro.runtime.sample",
        )
        assert not any(f.code == "H2P120" for f in findings)
        # H2P121 matched nothing on that line -> unused-code finding.
        unused = [f for f in findings if f.code == UNUSED_SUPPRESSION_CODE]
        assert len(unused) == 1
        assert "H2P121" in unused[0].message

    def test_space_separated_codes(self):
        pragmas = collect_pragmas("x = 1  # lint: disable=H2P101 H2P120\n")
        assert len(pragmas) == 1
        assert pragmas[0].codes == ("H2P101", "H2P120")
        assert pragmas[0].malformed == ()

    def test_malformed_pragma_reported(self):
        findings = lint_source(
            "x = 1  # lint: disable=not-a-code!\n",
            path="<fixture>",
            module="repro.core.sample",
        )
        malformed = [
            f for f in findings if f.code == UNUSED_SUPPRESSION_CODE
        ]
        assert len(malformed) == 1
        assert "malformed" in malformed[0].message

    def test_empty_disable_list_is_malformed(self):
        findings = lint_source(
            "x = 1  # lint: disable=\n",
            path="<fixture>",
            module="repro.core.sample",
        )
        assert any(
            f.code == UNUSED_SUPPRESSION_CODE and "malformed" in f.message
            for f in findings
        )

    def test_pragma_in_docstring_is_inert(self):
        findings = lint_source(
            '"""Docs mention # lint: disable=H2P101 as an example."""\n'
            "x = 1\n",
            path="<fixture>",
            module="repro.core.sample",
        )
        assert not any(
            f.code == UNUSED_SUPPRESSION_CODE for f in findings
        )

    def test_pragma_on_continuation_line(self):
        # The finding spans the whole wrapped statement; a pragma on
        # the continuation line must still suppress it.
        source = (
            "def total(makespan_ms, size_mb):\n"
            "    return (makespan_ms\n"
            "            + size_mb)  # lint: disable=H2P110\n"
        )
        findings = lint_source(
            source, path="<fixture>", module="repro.core.sample"
        )
        assert not any(f.code == "H2P110" for f in findings)
        assert not any(
            f.code == UNUSED_SUPPRESSION_CODE for f in findings
        )

    def test_unused_pragma_flags_h2p109(self):
        findings = lint_source(
            "x = 1  # lint: disable=H2P101\n",
            path="<fixture>",
            module="repro.core.sample",
        )
        unused = [f for f in findings if f.code == UNUSED_SUPPRESSION_CODE]
        assert len(unused) == 1
        assert "H2P101" in unused[0].message

    def test_h2p109_not_self_suppressible(self):
        findings = lint_source(
            "x = 1  # lint: disable=H2P109\n",
            path="<fixture>",
            module="repro.core.sample",
        )
        assert any(
            f.code == UNUSED_SUPPRESSION_CODE for f in findings
        )

    def test_unused_check_skipped_under_rule_subset(self):
        from repro.lint.engine import get_rule

        findings = lint_source(
            "x = 1  # lint: disable=H2P120\n",
            path="<fixture>",
            module="repro.core.sample",
            rules=[get_rule("H2P120")],
        )
        assert findings == []


# --------------------------------------------------- deterministic sort


class TestDeterministicOrder:
    def test_sort_key_orders_path_line_col_code(self):
        findings = [
            Finding(code="H2P120", message="m", path="b.py", line=1),
            Finding(code="H2P110", message="m", path="a.py", line=9),
            Finding(code="H2P110", message="m", path="a.py", line=2, col=4),
            Finding(code="H2P101", message="m", path="a.py", line=2, col=4),
        ]
        ordered = sorted(findings, key=Finding.sort_key)
        assert [(f.path, f.line, f.col, f.code) for f in ordered] == [
            ("a.py", 2, 4, "H2P101"),
            ("a.py", 2, 4, "H2P110"),
            ("a.py", 9, 0, "H2P110"),
            ("b.py", 1, 0, "H2P120"),
        ]

    def test_lint_paths_output_is_sorted(self, tmp_path):
        root = tmp_path / "src"
        pkg = root / "repro" / "runtime"
        pkg.mkdir(parents=True)
        (pkg / "zz.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        (pkg / "aa.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        from repro.lint import lint_paths

        findings = lint_paths([root], src_root=root)
        keys = [Finding.sort_key(f) for f in findings]
        assert keys == sorted(keys)


# ------------------------------------------------------------- SARIF


class TestSarifReporter:
    def _findings(self):
        return [
            Finding(
                code="H2P110",
                message="mixed-unit operation: ms + MB",
                path="src/repro/core/x.py",
                line=12,
                col=4,
                end_line=13,
            ),
            Finding(
                code="H2P000",
                message="syntax error: bad",
                path="src/repro/core/y.py",
                line=1,
            ),
        ]

    def test_sarif_document_shape(self):
        doc = json.loads(render_sarif(self._findings()))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "hetero2pipe-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert set(rule_ids) == {"H2P110", "H2P000"}
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_sarif_results_reference_rule_table(self):
        doc = json.loads(render_sarif(self._findings()))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] == "error"
            assert result["message"]["text"]

    def test_sarif_columns_are_one_based(self):
        doc = json.loads(render_sarif(self._findings()))
        result = doc["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] == 5  # engine col 4 -> SARIF 5
        assert region["endLine"] == 13
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/core/x.py"

    def test_sarif_empty_findings_still_valid_shape(self):
        doc = json.loads(render_sarif([]))
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []

    def test_json_schema_marker(self):
        doc = json.loads(render_json([]))
        assert doc["schema"] == JSON_SCHEMA == "hetero2pipe.lint.v1"
        doc = json.loads(
            render_json([], baseline={"matched": 1, "new": 0, "stale": []})
        )
        assert doc["baseline"]["matched"] == 1


# ---------------------------------------------------------- baseline


class TestBaselineRatchet:
    def _finding(self, path="src/x.py", code="H2P110", message="m", line=1):
        return Finding(code=code, message=message, path=path, line=line)

    def test_roundtrip_and_schema(self, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding(), self._finding(line=9)])
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == BASELINE_SCHEMA
        # Same (path, code, message) twice -> one entry with count 2.
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["count"] == 2
        tolerated = load_baseline(baseline)
        assert tolerated[baseline_key(self._finding())] == 2

    def test_wrong_schema_rejected(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(baseline)

    def test_nonpositive_count_rejected(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "entries": [
                        {"path": "x", "code": "c", "message": "m", "count": 0}
                    ],
                }
            )
        )
        with pytest.raises(ValueError):
            load_baseline(baseline)

    def test_matched_findings_tolerated(self, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding()])
        result = apply_baseline([self._finding()], load_baseline(baseline))
        assert result.ok
        assert len(result.matched) == 1
        assert result.new == [] and result.stale == []

    def test_new_finding_fails(self, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding()])
        extra = self._finding(code="H2P120")
        result = apply_baseline(
            [self._finding(), extra], load_baseline(baseline)
        )
        assert not result.ok
        assert result.new == [extra]

    def test_count_overflow_is_new(self, tmp_path):
        # Two instances baselined, three present: the third is new.
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding(), self._finding(line=2)])
        result = apply_baseline(
            [self._finding(line=i) for i in (1, 2, 3)],
            load_baseline(baseline),
        )
        assert len(result.matched) == 2
        assert len(result.new) == 1

    def test_stale_entry_fails_shrunk_baseline(self, tmp_path):
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding()])
        result = apply_baseline([], load_baseline(baseline))
        assert not result.ok
        assert result.stale[0]["code"] == "H2P110"

    def test_line_moves_do_not_break_ratchet(self, tmp_path):
        # Keyed on (path, code, message), not line: edits above the
        # finding must not invalidate the baseline.
        baseline = tmp_path / "b.json"
        write_baseline(baseline, [self._finding(line=10)])
        result = apply_baseline(
            [self._finding(line=50)], load_baseline(baseline)
        )
        assert result.ok

    def test_summary_block(self):
        result = BaselineResult(
            new=[self._finding()], matched=[], stale=[]
        )
        summary = result.summary()
        assert summary == {"matched": 0, "new": 1, "stale": []}


# ------------------------------------------------------------ CLI


class TestCliRatchet:
    def _seed_tree(self, tmp_path):
        root = tmp_path / "src"
        pkg = root / "repro" / "runtime"
        pkg.mkdir(parents=True)
        (pkg / "clocked.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        return root

    def test_update_then_pass_then_fail_on_new(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = self._seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = [str(root), "--src-root", str(root)]

        # 1. Findings exist -> exit 1.
        assert lint_main(args) == 1
        # 2. Record them -> exit 0.
        assert (
            lint_main(args + ["--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        # 3. Ratchet passes while nothing changed.
        assert lint_main(args + ["--baseline", str(baseline)]) == 0
        # 4. A new violation fails the ratchet.
        (root / "repro" / "runtime" / "fresh.py").write_text(
            "import time\n\ndef later():\n    return time.time()\n"
        )
        assert lint_main(args + ["--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "1 new" in out

    def test_shrunk_baseline_reports_stale(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = self._seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = [str(root), "--src-root", str(root)]
        assert (
            lint_main(args + ["--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        # Fix the finding without regenerating: stale entry, exit 1.
        (root / "repro" / "runtime" / "clocked.py").write_text(
            "def now():\n    return 0.0\n"
        )
        assert lint_main(args + ["--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale" in out
        assert "--update-baseline" in out

    def test_missing_baseline_is_usage_error(self, tmp_path):
        root = self._seed_tree(tmp_path)
        assert (
            lint_main(
                [str(root), "--src-root", str(root), "--baseline", "/no/file"]
            )
            == 2
        )

    def test_update_baseline_requires_baseline_flag(self, tmp_path):
        root = self._seed_tree(tmp_path)
        assert (
            lint_main([str(root), "--src-root", str(root), "--update-baseline"])
            == 2
        )

    def test_format_sarif_emits_valid_document(self, tmp_path, capsys):
        root = self._seed_tree(tmp_path)
        assert (
            lint_main([str(root), "--src-root", str(root), "--format", "sarif"])
            == 1
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_json_format_conflict_rejected(self, tmp_path):
        root = self._seed_tree(tmp_path)
        assert (
            lint_main(
                [str(root), "--src-root", str(root), "--json", "--format", "text"]
            )
            == 2
        )

    def test_normalize_finding_paths(self, tmp_path):
        inside = Finding(
            code="H2P101",
            message="m",
            path=str(tmp_path / "src" / "x.py"),
            line=1,
        )
        outside = Finding(code="H2P101", message="m", path="plan://p", line=1)
        normalized = normalize_finding_paths([inside, outside], base=tmp_path)
        assert normalized[0].path == "src/x.py"
        assert normalized[1].path == "plan://p"

    def test_repo_baseline_file_is_current(self):
        # The committed baseline must load and carry the v1 schema —
        # the CI ratchet depends on both.
        repo_baseline = (
            Path(__file__).resolve().parents[1] / ".lint-baseline.json"
        )
        assert repo_baseline.exists()
        load_baseline(repo_baseline)  # raises on schema drift
