"""Rule catalogue: importing this package registers every rule.

One module per rule family; each module's docstring carries the paper
rationale that ``docs/STATIC_ANALYSIS.md`` summarizes. The H2P11x/
H2P12x families are dataflow rules built on :mod:`repro.lint.flow`.
"""

from __future__ import annotations

from . import asyncsafe  # noqa: F401
from . import determinism  # noqa: F401
from . import floateq  # noqa: F401
from . import frozen  # noqa: F401
from . import infeasible  # noqa: F401
from . import layering  # noqa: F401
from . import printer  # noqa: F401
from . import spanctx  # noqa: F401
from . import unitflow  # noqa: F401
from . import units  # noqa: F401
from . import wallclock  # noqa: F401

from .asyncsafe import AsyncBlockingCallRule
from .determinism import ModuleStateWriteRule, UnseededRandomnessRule
from .floateq import FloatEqualityRule
from .frozen import FrozenMutationRule
from .infeasible import InfeasibleArithmeticRule
from .layering import ImportLayeringRule
from .printer import PrintInLibraryRule
from .spanctx import SpanContextRule
from .unitflow import ReturnUnitRule, UnitMismatchRule
from .units import UnitSuffixRule
from .wallclock import WallClockRule

__all__ = [
    "AsyncBlockingCallRule",
    "FloatEqualityRule",
    "FrozenMutationRule",
    "InfeasibleArithmeticRule",
    "ImportLayeringRule",
    "ModuleStateWriteRule",
    "PrintInLibraryRule",
    "ReturnUnitRule",
    "SpanContextRule",
    "UnitMismatchRule",
    "UnitSuffixRule",
    "UnseededRandomnessRule",
    "WallClockRule",
]
