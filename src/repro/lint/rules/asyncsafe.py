"""H2P120 — no blocking calls reachable inside ``async def``.

The ROADMAP's next tentpole is ``repro.serve``: an asyncio front-end
multiplexing thousands of client streams onto the planner. Puzzle
(PAPERS.md) serves multiple models from one event loop — and a single
synchronous ``time.sleep``/file read/``subprocess`` call inside a
coroutine stalls *every* stream at once, invalidating each measured
percentile while looking perfectly correct in unit tests. This rule is
the guardrail that lands *before* the server does: any blocking call
lexically reachable inside an ``async def`` (outside nested synchronous
functions, which run wherever their caller puts them) is flagged, with
the non-blocking alternative in the message.

Flagged shapes, aliases honoured:

* ``time.sleep(...)`` (→ ``await asyncio.sleep``)
* ``subprocess.run/call/check_output/Popen/...``, ``os.system``,
  ``os.popen`` (→ ``asyncio.create_subprocess_exec``)
* ``open(...)``, ``Path.read_text/read_bytes/write_text/write_bytes``
  (→ ``loop.run_in_executor`` / a thread off the loop)
* ``socket.create_connection``, ``urllib.request.urlopen``,
  ``requests.<verb>`` (→ an async client or ``run_in_executor``)

Passing a blocking function *as a value* (``run_in_executor(None,
time.sleep, 1)``) is the sanctioned escape hatch and is not a call, so
it never flags.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine import Finding, LintContext, LintRule, register_rule

#: (module, attribute) -> suggested replacement.
_BLOCKING_ATTRS: Dict[Tuple[str, str], str] = {
    ("time", "sleep"): "await asyncio.sleep(...)",
    ("os", "system"): "asyncio.create_subprocess_shell(...)",
    ("os", "popen"): "asyncio.create_subprocess_shell(...)",
    ("os", "waitpid"): "asyncio child-process APIs",
    ("socket", "create_connection"): "asyncio.open_connection(...)",
    ("requests", "get"): "an async HTTP client or run_in_executor",
    ("requests", "post"): "an async HTTP client or run_in_executor",
    ("requests", "request"): "an async HTTP client or run_in_executor",
    ("urllib.request", "urlopen"): "an async HTTP client or run_in_executor",
}

#: Any attribute call on these modules blocks (process spawning waits).
_BLOCKING_MODULES: Dict[str, str] = {
    "subprocess": "asyncio.create_subprocess_exec(...)",
}

#: Method names that do synchronous file IO wherever their object came
#: from (pathlib.Path in this codebase).
_BLOCKING_METHODS: Dict[str, str] = {
    "read_text": "loop.run_in_executor(...) for file IO",
    "write_text": "loop.run_in_executor(...) for file IO",
    "read_bytes": "loop.run_in_executor(...) for file IO",
    "write_bytes": "loop.run_in_executor(...) for file IO",
}


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Bound name -> dotted module, for ``import x [as y]`` forms."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import urllib.request`` binds ``urllib``; the
                    # call site spells the rest of the chain itself.
                    root = alias.name.split(".")[0]
                    aliases[root] = root
    return aliases


def _from_import_aliases(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Bound name -> (module, attr) for ``from x import y [as z]``."""
    aliases: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (node.module, alias.name)
    return aliases


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Collect blocking calls inside one async body, skipping nested
    synchronous function/lambda scopes (those run off the loop if the
    caller says so — flagging them would punish the escape hatch)."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # sync scope: not on the event loop by construction

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return  # nested coroutine gets its own visit from the rule

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


@register_rule
class AsyncBlockingCallRule(LintRule):
    code = "H2P120"
    name = "no-blocking-calls-in-async"
    rationale = (
        "one sync sleep/IO/subprocess call inside a coroutine stalls "
        "every stream on the event loop and silently corrupts all "
        "serving percentiles (the repro.serve guardrail)"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        parts = ctx.package_parts
        if parts and parts[0] != "repro":
            return
        module_aliases = _import_aliases(tree)
        from_aliases = _from_import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            visitor = _AsyncBodyVisitor()
            for stmt in node.body:
                visitor.visit(stmt)
            for call in visitor.calls:
                hit = self._classify(call, module_aliases, from_aliases)
                if hit is not None:
                    blocked, suggestion = hit
                    yield self.finding(
                        ctx,
                        call,
                        f"blocking call {blocked!r} inside async def "
                        f"{node.name!r} stalls the event loop; use "
                        f"{suggestion}",
                    )

    def _classify(
        self,
        call: ast.Call,
        module_aliases: Dict[str, str],
        from_aliases: Dict[str, Tuple[str, str]],
    ) -> Optional[Tuple[str, str]]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return ("open", "loop.run_in_executor(...) for file IO")
            origin = from_aliases.get(func.id)
            if origin is not None:
                module, attr = origin
                if (module, attr) in _BLOCKING_ATTRS:
                    return (
                        f"{module}.{attr}",
                        _BLOCKING_ATTRS[(module, attr)],
                    )
                if module in _BLOCKING_MODULES:
                    return (
                        f"{module}.{attr}",
                        _BLOCKING_MODULES[module],
                    )
            return None
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is not None and "." in dotted:
                head, _, rest = dotted.partition(".")
                module = module_aliases.get(head, head)
                full = f"{module}.{rest}" if rest else module
                mod_part, _, attr_part = full.rpartition(".")
                if (mod_part, attr_part) in _BLOCKING_ATTRS:
                    return (full, _BLOCKING_ATTRS[(mod_part, attr_part)])
                if mod_part in _BLOCKING_MODULES:
                    return (full, _BLOCKING_MODULES[mod_part])
            if func.attr in _BLOCKING_METHODS:
                return (f".{func.attr}()", _BLOCKING_METHODS[func.attr])
        return None
