"""Baseline ratchet: tolerate committed findings, fail on new ones.

A baseline is a committed JSON file (``hetero2pipe.lint.baseline.v1``)
recording the findings a repository has consciously decided to live
with. ``hetero2pipe lint --baseline FILE`` then partitions the current
findings:

* **matched** — covered by a baseline entry: tolerated, not reported;
* **new** — not in the baseline (or exceeding a baselined count):
  reported, non-zero exit. The ratchet only tightens.
* **stale** — baseline entries nothing matches anymore: also a
  failure, with instructions to regenerate via ``--update-baseline``.
  A fixed finding must shrink the committed baseline in the same
  change, otherwise headroom silently accumulates for new debt
  (exactly the failure mode that makes ratchets decorative).

Entries are keyed by ``(path, code, message)`` with an occurrence
count — deliberately **not** by line number, so unrelated edits above
a baselined finding don't break the ratchet, while a new instance of
the same finding in the same file still fails once the count grows.
Paths are stored slash-normalized and relative (the CLI relativizes
against the working directory) so the file is portable between
machines and CI.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .engine import Finding

BASELINE_SCHEMA = "hetero2pipe.lint.baseline.v1"

#: (path, code, message) — the identity of a baselined finding.
BaselineKey = Tuple[str, str, str]


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.code, finding.message)


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a findings list."""

    new: List[Finding] = field(default_factory=list)
    matched: List[Finding] = field(default_factory=list)
    stale: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the ratchet passes: nothing new, nothing stale."""
        return not self.new and not self.stale

    def summary(self) -> Dict[str, object]:
        """The ``baseline`` block of the ``hetero2pipe.lint.v1`` doc."""
        return {
            "matched": len(self.matched),
            "new": len(self.new),
            "stale": self.stale,
        }


def load_baseline(path: Path) -> "Counter[BaselineKey]":
    """Read a baseline file into per-key tolerated counts.

    Raises:
        ValueError: on a wrong schema marker or malformed entries.
    """
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    tolerated: Counter[BaselineKey] = Counter()
    for entry in document.get("entries", []):
        try:
            key = (
                str(entry["path"]),
                str(entry["code"]),
                str(entry["message"]),
            )
            count = int(entry.get("count", 1))
        except (KeyError, TypeError) as error:
            raise ValueError(f"{path}: malformed baseline entry {entry!r}") from error
        if count < 1:
            raise ValueError(f"{path}: non-positive count in {entry!r}")
        tolerated[key] += count
    return tolerated


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write the baseline for the current findings; returns entry count."""
    counts: Counter[BaselineKey] = Counter(
        baseline_key(f) for f in findings
    )
    entries = [
        {
            "path": key[0],
            "code": key[1],
            "message": key[2],
            "count": count,
        }
        for key, count in sorted(counts.items())
    ]
    document = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding],
    tolerated: "Counter[BaselineKey]",
) -> BaselineResult:
    """Partition findings into new vs matched, and surface stale entries.

    Findings beyond a key's tolerated count are new (first N instances
    match, the rest fail) — the ratchet direction that only tightens.
    """
    remaining = Counter(tolerated)
    result = BaselineResult()
    for finding in findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.matched.append(finding)
        else:
            result.new.append(finding)
    for key, count in sorted(remaining.items()):
        if count > 0:
            result.stale.append(
                {
                    "path": key[0],
                    "code": key[1],
                    "message": key[2],
                    "count": count,
                }
            )
    return result


__all__ = [
    "BASELINE_SCHEMA",
    "BaselineKey",
    "BaselineResult",
    "apply_baseline",
    "baseline_key",
    "load_baseline",
    "write_baseline",
]
