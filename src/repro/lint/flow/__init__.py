"""``repro.lint.flow`` — dataflow infrastructure for the lint engine.

The H2P1xx rules that shipped with PR 1 are single-node AST matchers:
they look at one expression and decide. The rule families this package
backs (unit-dimension inference H2P11x, concurrency/determinism
readiness H2P12x) need to know how *values travel* — a latency read
into a local, added three statements later, returned from a branch —
so the package provides the three classic pieces:

* :mod:`repro.lint.flow.cfg` — intraprocedural control-flow graphs
  over ``ast`` statements (branches, loops, try/except, early exits);
* :mod:`repro.lint.flow.lattice` — the unit lattice (ms/us/ns/s, mJ/J,
  bytes/MB/GB, per-s rates, dimensionless ratio/count, ⊥/⊤) with join
  and arithmetic transfer rules, inferred from the codebase's
  ``_ms``/``_mb`` suffix convention (the same one H2P104 enforces);
* :mod:`repro.lint.flow.analysis` — a generic forward worklist solver
  plus the :class:`UnitAnalysis` abstract interpretation that the
  H2P11x rules run per function.

Everything here is pure (no I/O, no globals) so rules stay pure
functions of ``(tree, context)`` as the engine requires.
"""

from __future__ import annotations

from .cfg import CFG, BasicBlock, build_cfg
from .lattice import (
    Unit,
    additive_compatible,
    dimension,
    is_definite,
    join,
    suffix_unit,
    unit_of_add,
    unit_of_div,
    unit_of_mul,
)
from .analysis import UnitAnalysis, UnitViolation, run_forward

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "Unit",
    "additive_compatible",
    "dimension",
    "is_definite",
    "join",
    "suffix_unit",
    "unit_of_add",
    "unit_of_div",
    "unit_of_mul",
    "UnitAnalysis",
    "UnitViolation",
    "run_forward",
]
