"""Tests for the roofline latency model, profiler tables, PMU and slowdown."""

import math

import pytest

from repro.hardware.processor import make_cpu_big, make_cpu_small, make_gpu, make_npu
from repro.hardware.soc import get_soc
from repro.models.ir import Layer, ModelGraph, OpType
from repro.models.zoo import get_model
from repro.profiling.latency import (
    MAX_AMPLIFICATION,
    copy_latency_ms,
    layer_compute_memory_ms,
    layer_latency_ms,
    layer_traffic_bytes,
    traffic_amplification,
)
from repro.profiling.pmu import ground_truth_intensity, measure_counters
from repro.profiling.profiler import INFEASIBLE, ModelProfile, SocProfiler
from repro.profiling.slowdown import (
    SliceWorkload,
    co_execution_ms,
    intra_cluster_slowdown,
    pairwise_slowdown_table,
    slowdown_fraction,
)


def _layer(op=OpType.CONV, flops=1e9, weights=1e6, acts=1e6, name="x"):
    return Layer(
        name=name, op=op, flops=flops, weight_bytes=weights,
        activation_bytes=acts, output_bytes=1e4,
    )


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiles(kirin):
    profiler = SocProfiler(kirin)
    return {
        name: profiler.profile(get_model(name))
        for name in ("squeezenet", "bert", "vit", "resnet50", "vgg16")
    }


class TestTrafficAmplification:
    def test_conv_has_no_amplification(self):
        cpu = make_cpu_big()
        assert traffic_amplification(_layer(OpType.CONV, weights=1e8), cpu) == 1.0

    def test_small_matmul_fits_cache(self):
        cpu = make_cpu_big()
        layer = _layer(OpType.MATMUL, weights=cpu.l2_cache_bytes / 2)
        assert traffic_amplification(layer, cpu) == 1.0

    def test_large_matmul_amplified(self):
        cpu = make_cpu_big()
        layer = _layer(OpType.MATMUL, weights=cpu.l2_cache_bytes * 9)
        assert traffic_amplification(layer, cpu) == pytest.approx(3.0)

    def test_amplification_capped(self):
        cpu = make_cpu_big()
        layer = _layer(OpType.MATMUL, weights=cpu.l2_cache_bytes * 1e6)
        assert traffic_amplification(layer, cpu) == MAX_AMPLIFICATION

    def test_fc_layers_traffic_exceeds_conv(self):
        # Observation 2: FC / MatMul layers have amplified cache misses.
        cpu = make_cpu_big()
        conv = _layer(OpType.CONV, weights=1e7)
        fc = _layer(OpType.FULLY_CONNECTED, weights=1e7)
        assert layer_traffic_bytes(fc, cpu) > 2 * layer_traffic_bytes(conv, cpu)


class TestLayerLatency:
    def test_roofline_compute_bound(self):
        cpu = make_cpu_big()
        layer = _layer(flops=1e10, weights=1e3, acts=1e3)
        compute, memory = layer_compute_memory_ms(layer, cpu)
        assert compute > memory
        latency = layer_latency_ms(layer, cpu)
        assert latency == pytest.approx(compute, rel=0.07)

    def test_roofline_memory_bound(self):
        cpu = make_cpu_big()
        layer = _layer(flops=1e3, weights=1e8, acts=1e8, op=OpType.CONV)
        compute, memory = layer_compute_memory_ms(layer, cpu)
        assert memory > compute
        assert layer_latency_ms(layer, cpu) == pytest.approx(memory, rel=0.07)

    def test_thermal_scale_slows_compute(self):
        cpu = make_cpu_big()
        layer = _layer(flops=1e10, weights=1e3, acts=1e3)
        assert layer_latency_ms(layer, cpu, 0.5) > layer_latency_ms(layer, cpu, 1.0)

    def test_invalid_thermal_scale(self):
        with pytest.raises(ValueError):
            layer_latency_ms(_layer(), make_cpu_big(), 0.0)

    def test_unsupported_layer_raises(self):
        with pytest.raises(ValueError):
            layer_latency_ms(_layer(OpType.MISH), make_npu())

    def test_deterministic(self):
        cpu = make_cpu_big()
        layer = _layer()
        assert layer_latency_ms(layer, cpu) == layer_latency_ms(layer, cpu)


class TestCopyLatency:
    def test_zero_bytes_free(self):
        assert copy_latency_ms(0.0, make_cpu_big(), make_gpu()) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            copy_latency_ms(-1.0, make_cpu_big(), make_gpu())

    def test_scales_with_size(self):
        a, b = make_cpu_big(), make_gpu()
        assert copy_latency_ms(2e6, a, b) > copy_latency_ms(1e6, a, b)

    def test_includes_dispatch_overheads(self):
        a, b = make_cpu_big(), make_npu()
        tiny = copy_latency_ms(1.0, a, b)
        assert tiny >= 0.5 * (a.launch_overhead_ms + b.launch_overhead_ms)


class TestModelProfile:
    def test_prefix_sums_match_direct(self, kirin, profiles):
        profile = profiles["resnet50"]
        cpu = kirin.cpu_big
        direct = sum(
            profile.layer_ms(cpu, i) for i in range(3, 9)
        ) + cpu.launch_overhead_ms
        assert profile.exec_ms(cpu, 3, 8) == pytest.approx(direct)

    def test_monotonicity_property(self, kirin, profiles):
        # Property 2: growing a slice never shrinks its time.
        profile = profiles["vgg16"]
        cpu = kirin.cpu_big
        n = profile.model.num_layers
        for i in range(0, n - 2):
            assert profile.exec_ms(cpu, i, n - 1) <= profile.exec_ms(
                cpu, i, n - 1
            )
            assert profile.exec_ms(cpu, i + 1, n - 1) < profile.exec_ms(cpu, i, n - 1)
            assert profile.exec_ms(cpu, 0, i) < profile.exec_ms(cpu, 0, i + 1)

    def test_npu_infeasible_slices(self, kirin, profiles):
        profile = profiles["bert"]
        npu = kirin.npu
        assert profile.exec_ms(npu, 0, 0) == INFEASIBLE
        assert not profile.feasible(npu, 0, profile.model.num_layers - 1)

    def test_feasible_on_cpu(self, kirin, profiles):
        profile = profiles["bert"]
        assert profile.feasible(kirin.cpu_big, 0, profile.model.num_layers - 1)

    def test_whole_model_matches_full_slice(self, kirin, profiles):
        profile = profiles["squeezenet"]
        cpu = kirin.cpu_big
        assert profile.whole_model_ms(cpu) == profile.exec_ms(
            cpu, 0, profile.model.num_layers - 1
        )

    def test_slice_cost_adds_copy_for_interior(self, kirin, profiles):
        profile = profiles["resnet50"]
        cpu, gpu = kirin.cpu_big, kirin.gpu
        plain = profile.exec_ms(cpu, 0, 5)
        with_copy = profile.slice_cost_ms(cpu, 0, 5, gpu)
        assert with_copy > plain

    def test_slice_cost_no_copy_at_tail(self, kirin, profiles):
        profile = profiles["resnet50"]
        cpu, gpu = kirin.cpu_big, kirin.gpu
        n = profile.model.num_layers
        assert profile.slice_cost_ms(cpu, 0, n - 1, gpu) == profile.exec_ms(
            cpu, 0, n - 1
        )

    def test_invalid_slice_raises(self, kirin, profiles):
        with pytest.raises(IndexError):
            profiles["vit"].exec_ms(kirin.cpu_big, 5, 2)

    def test_memory_fraction_in_unit_interval(self, kirin, profiles):
        for profile in profiles.values():
            frac = profile.memory_fraction(
                kirin.cpu_big, 0, profile.model.num_layers - 1
            )
            assert 0.0 <= frac <= 1.0

    def test_working_set_includes_weights_and_peak_activation(self, kirin, profiles):
        profile = profiles["squeezenet"]
        ws = profile.working_set_bytes(0, profile.model.num_layers - 1)
        assert ws > profile.model.total_weight_bytes

    def test_profiler_caches(self, kirin):
        profiler = SocProfiler(kirin)
        model = get_model("alexnet")
        assert profiler.profile(model) is profiler.profile(model)


class TestPmu:
    def test_counters_deterministic(self, kirin, profiles):
        p = profiles["bert"]
        a = measure_counters(p, kirin.cpu_big)
        b = measure_counters(p, kirin.cpu_big)
        assert a == b

    def test_memory_bound_models_have_lower_ipc(self, kirin, profiles):
        # AlexNet-style FC stacks are memory bound; compare extremes.
        ipc_sq = measure_counters(profiles["squeezenet"], kirin.cpu_big).ipc
        alex = SocProfiler(kirin).profile(get_model("alexnet"))
        ipc_alex = measure_counters(alex, kirin.cpu_big).ipc
        assert ipc_alex < ipc_sq

    def test_features_positive(self, kirin, profiles):
        for p in profiles.values():
            c = measure_counters(p, kirin.cpu_big)
            assert c.ipc > 0
            assert 0 <= c.cache_miss_rate <= 0.7
            assert 0 <= c.stalled_backend <= 1.0

    def test_ground_truth_squeezenet_outlier(self, kirin, profiles):
        # Observation 3: SqueezeNet's intensity rivals far larger models.
        sq = ground_truth_intensity(profiles["squeezenet"], kirin.cpu_big)
        vit = ground_truth_intensity(profiles["vit"], kirin.cpu_big)
        assert sq > vit


class TestSlowdown:
    def _workload(self, profiles, name, proc):
        p = profiles[name]
        return SliceWorkload(p, proc, 0, p.model.num_layers - 1)

    def test_no_corunners_no_slowdown(self, kirin, profiles):
        w = self._workload(profiles, "bert", kirin.cpu_big)
        assert slowdown_fraction(kirin, w, []) == 0.0

    def test_same_processor_rejected(self, kirin, profiles):
        a = self._workload(profiles, "bert", kirin.cpu_big)
        b = self._workload(profiles, "vit", kirin.cpu_big)
        with pytest.raises(ValueError):
            slowdown_fraction(kirin, a, [b])

    def test_cpu_gpu_pair_in_published_band(self, kirin, profiles):
        # Sec. III: CPU-GPU slowdowns are in the 5-30 % range.
        a = self._workload(profiles, "squeezenet", kirin.cpu_big)
        b = self._workload(profiles, "bert", kirin.gpu)
        s_a, s_b = pairwise_slowdown_table(kirin, a, b)
        assert 0.05 <= s_a <= 0.35
        assert 0.05 <= s_b <= 0.35

    def test_npu_pairs_nearly_isolated(self, kirin, profiles):
        # Sec. III: NPU pairs see only 2-5 % slowdown.
        a = self._workload(profiles, "vgg16", kirin.cpu_big)
        b = self._workload(profiles, "resnet50", kirin.npu)
        s_a, s_b = pairwise_slowdown_table(kirin, a, b)
        assert s_a <= 0.06
        assert s_b <= 0.06

    def test_squeezenet_more_disruptive_than_vit(self, kirin, profiles):
        # Table II / Observation 3.
        bert_gpu = self._workload(profiles, "bert", kirin.gpu)
        sq = self._workload(profiles, "squeezenet", kirin.cpu_big)
        vit = self._workload(profiles, "vit", kirin.cpu_big)
        slow_by_sq = slowdown_fraction(kirin, bert_gpu, [sq])
        slow_by_vit = slowdown_fraction(kirin, bert_gpu, [vit])
        assert slow_by_sq > slow_by_vit

    def test_more_corunners_more_slowdown(self, kirin, profiles):
        victim = self._workload(profiles, "bert", kirin.cpu_big)
        one = [self._workload(profiles, "vit", kirin.gpu)]
        two = one + [self._workload(profiles, "squeezenet", kirin.cpu_small)]
        assert slowdown_fraction(kirin, victim, two) > slowdown_fraction(
            kirin, victim, one
        )

    def test_slowdown_bounded(self, kirin, profiles):
        victim = self._workload(profiles, "squeezenet", kirin.cpu_big)
        others = [
            self._workload(profiles, "vgg16", kirin.gpu),
            self._workload(profiles, "bert", kirin.cpu_small),
            self._workload(profiles, "resnet50", kirin.npu),
        ]
        assert slowdown_fraction(kirin, victim, others) < 0.9

    def test_co_execution_time_inflates(self, kirin, profiles):
        victim = self._workload(profiles, "bert", kirin.cpu_big)
        co = [self._workload(profiles, "squeezenet", kirin.gpu)]
        assert co_execution_ms(kirin, victim, co) > victim.solo_ms()

    def test_intra_cluster_reaches_high_slowdown(self, kirin, profiles):
        # Fig. 10: up to ~70 % within one cluster.
        victim = self._workload(profiles, "squeezenet", kirin.cpu_big)
        partner = self._workload(profiles, "vgg16", kirin.cpu_big)
        s = intra_cluster_slowdown(kirin, victim, partner)
        assert 0.3 <= s <= 0.9

    def test_intra_cluster_asymmetric_split(self, kirin, profiles):
        victim = self._workload(profiles, "squeezenet", kirin.cpu_big)
        partner = self._workload(profiles, "vgg16", kirin.cpu_big)
        even = intra_cluster_slowdown(kirin, victim, partner, 2, 2)
        minority = intra_cluster_slowdown(kirin, victim, partner, 1, 3)
        assert minority > even

    def test_intra_cluster_invalid_cores(self, kirin, profiles):
        victim = self._workload(profiles, "squeezenet", kirin.cpu_big)
        partner = self._workload(profiles, "vgg16", kirin.cpu_big)
        with pytest.raises(ValueError):
            intra_cluster_slowdown(kirin, victim, partner, 0, 2)
