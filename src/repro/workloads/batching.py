"""Batching of lightweight models (Appendix D, Fig. 13).

A single SqueezeNet/MobileNetV2 inference is 20-40x shorter than a BERT
stage, so vertically aligning one lightweight inference is wasteful —
kernel-launch and model-load overheads dominate.  The paper's fix is to
*batch* lightweight requests: on mobile processors with limited on-chip
memory, batched execution time is an affine function of batch size,

    t(b) ~= t_fixed + b * t_marginal,

which lets the planner size batches so light and heavy models occupy
comparable stage times.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import List, Sequence

from ..hardware.processor import ProcessorKind, ProcessorSpec
from ..profiling.profiler import INFEASIBLE, ModelProfile

#: Mobile accelerators overlap a little work across a batch (weight reuse
#: amortization) but lack the on-chip memory for real batch parallelism;
#: marginal cost per extra sample relative to a solo run.
_MARGINAL_FACTOR = {
    ProcessorKind.CPU_BIG: 0.92,
    ProcessorKind.CPU_SMALL: 0.95,
    ProcessorKind.GPU: 0.80,
    ProcessorKind.NPU: 0.70,
}

#: One-off batch setup: model load + buffer staging, relative to the
#: unit's kernel-launch overhead.
_SETUP_FACTOR = 6.0


@dataclass(frozen=True)
class BatchLatency:
    """Affine batched-latency model for one (model, processor) pair."""

    fixed_ms: float
    marginal_ms: float
    tag: str = ""

    def latency_ms(self, batch_size: int) -> float:
        """Ideal affine time for one batch.

        Raises:
            ValueError: for batch sizes below 1.
        """
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        return self.fixed_ms + self.marginal_ms * batch_size

    def measured_latency_ms(self, batch_size: int) -> float:
        """Affine time plus deterministic per-batch measurement jitter.

        Real measurements (Fig. 13) show small scheduling/allocator
        noise around the affine trend; the jitter is a stable hash of
        (tag, batch_size) so every run reproduces the same series.
        """
        ideal = self.latency_ms(batch_size)
        digest = zlib.crc32(f"{self.tag}:{batch_size}".encode())
        unit = (digest % 10_000) / 10_000.0
        return ideal * (1.0 + 0.015 * (2.0 * unit - 1.0))

    def per_sample_ms(self, batch_size: int) -> float:
        return self.latency_ms(batch_size) / batch_size


def batch_latency_model(
    profile: ModelProfile, proc: ProcessorSpec
) -> BatchLatency:
    """Fit the affine batch model from the solo profile.

    Raises:
        ValueError: if the model cannot execute on the processor.
    """
    solo = profile.whole_model_ms(proc)
    if math.isinf(solo):
        raise ValueError(
            f"{profile.model.name!r} cannot execute on {proc.name!r}"
        )
    marginal = solo * _MARGINAL_FACTOR[proc.kind]
    fixed = solo - marginal + _SETUP_FACTOR * proc.launch_overhead_ms
    return BatchLatency(
        fixed_ms=fixed,
        marginal_ms=marginal,
        tag=f"{profile.model.name}:{proc.name}",
    )


def batch_size_to_match(
    profile: ModelProfile,
    proc: ProcessorSpec,
    target_ms: float,
    max_batch: int = 64,
) -> int:
    """Smallest batch whose latency reaches ``target_ms`` (capped).

    This is how the planner closes the 20-40x light/heavy gap: batch the
    light model until its stage time approaches the heavy model's.
    """
    if target_ms <= 0:
        raise ValueError("target must be positive")
    model = batch_latency_model(profile, proc)
    if model.marginal_ms <= 0:
        return 1
    needed = (target_ms - model.fixed_ms) / model.marginal_ms
    return max(1, min(max_batch, math.ceil(needed)))


def batched_model(model, batch_size: int):
    """A :class:`~repro.models.ir.ModelGraph` scaled to a batch.

    Per-layer FLOPs and activation traffic scale with the batch; weights
    are shared across the batch (that is batching's whole point); the
    boundary tensors crossing pipeline stages also scale.

    Raises:
        ValueError: for batch sizes below 1.
    """
    from ..models.ir import Layer, ModelGraph

    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    if batch_size == 1:
        return model
    layers = tuple(
        Layer(
            name=layer.name,
            op=layer.op,
            flops=layer.flops * batch_size,
            weight_bytes=layer.weight_bytes,
            activation_bytes=layer.activation_bytes * batch_size,
            output_bytes=layer.output_bytes * batch_size,
            output_shape=(batch_size, *layer.output_shape),
        )
        for layer in model.layers
    )
    return ModelGraph(
        name=f"{model.name}_x{batch_size}",
        layers=layers,
        family=model.family,
        input_bytes=model.input_bytes * batch_size,
    )


def coalesce_stream(models, max_batch: int = 8):
    """Merge runs of identical lightweight requests into batched ones.

    Appendix D's remedy operationalized: consecutive requests for the
    same model are folded into one batched request (up to ``max_batch``)
    so a pipeline stage carries a heavyweight-comparable amount of work
    instead of paying per-frame launch and load overhead.

    Returns:
        ``(batched_models, group_sizes)`` where ``group_sizes[i]`` is how
        many original requests the i-th output request represents.

    Raises:
        ValueError: for an empty stream or max_batch < 1.
    """
    if not models:
        raise ValueError("stream must be non-empty")
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    batched = []
    sizes = []
    run_model, run_len = models[0], 1
    for model in list(models[1:]) + [None]:
        if model is not None and model.name == run_model.name and run_len < max_batch:
            run_len += 1
            continue
        batched.append(batched_model(run_model, run_len))
        sizes.append(run_len)
        if model is not None:
            run_model, run_len = model, 1
    return batched, sizes


def latency_growth_rates(
    profile: ModelProfile, proc: ProcessorSpec, batch_sizes: Sequence[int]
) -> List[float]:
    """Per-batch latency deltas (the Fig. 13 y-axis: rate of change).

    A flat series confirms the affine model — compute resources are
    saturated and each extra sample costs the same marginal time.
    """
    model = batch_latency_model(profile, proc)
    sizes = sorted(set(batch_sizes))
    if len(sizes) < 2:
        raise ValueError("need at least two batch sizes")
    lats = [model.measured_latency_ms(b) for b in sizes]
    return [
        (lats[i + 1] - lats[i]) / (sizes[i + 1] - sizes[i])
        for i in range(len(sizes) - 1)
    ]
