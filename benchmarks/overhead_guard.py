"""CI guard: the observability layer must not slow the planner down.

Times ``Hetero2PipePlanner.plan`` on the Fig. 7-style five-model mix
(yolov4, bert, squeezenet, resnet50, vit on Kirin 990) twice:

* **disabled** — the default ``NullRecorder``: every ``obs`` call site
  must reduce to roughly one attribute lookup;
* **enabled** — a fresh ``InMemoryRecorder`` per round, so spans,
  metrics and the provenance log are all live.

Best-of-N wall times are compared; the guard fails when the enabled
run exceeds the disabled run by more than ``MAX_OVERHEAD`` (plus a
small absolute slack so sub-millisecond timer noise cannot flake CI).

A second measurement applies the identical budget to the *streaming
telemetry* path: one event-engine execution of the planned pipeline
plain, versus the same execution with ``keep_events=True`` and every
event folded through a :class:`~repro.obs.timeline.TimelineAggregator`
(windowed utilization/queue-depth/latency-sketch telemetry live).

Timers come from :mod:`repro.obs.bench` (the unified harness), and
``--json PATH`` writes the two measurements as
``hetero2pipe.bench.v1`` rows.

Run directly (exit code 0/1, used by the ``obs-overhead`` CI job)::

    PYTHONPATH=src python benchmarks/overhead_guard.py [--json PATH]
"""

import sys

from repro import obs
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import bench

MODEL_MIX = ("yolov4", "bert", "squeezenet", "resnet50", "vit")
SOC = "kirin990"
WARMUP_ROUNDS = 2
TIMED_ROUNDS = 7
MAX_OVERHEAD = 0.05  # +5 % over the disabled path
ABS_SLACK_S = 0.010  # timer-noise floor per plan


def measure():
    soc = get_soc(SOC)
    models = [get_model(name) for name in MODEL_MIX]
    # Caches off: with the plan/objective caches warm every round would
    # be a near-free lookup and the guard would time noise instead of
    # instrumented planning work (benchmarks/cache_guard.py covers the
    # cached path).
    planner = Hetero2PipePlanner(soc, PlannerConfig.uncached())

    def plan_disabled():
        planner.plan(models)

    def plan_enabled():
        with obs.use_recorder(obs.InMemoryRecorder()):
            planner.plan(models)

    for _ in range(WARMUP_ROUNDS):
        plan_disabled()
        plan_enabled()

    disabled_s = bench.best_of_s(TIMED_ROUNDS, plan_disabled)
    enabled_s = bench.best_of_s(TIMED_ROUNDS, plan_enabled)
    return disabled_s, enabled_s


def measure_timeline():
    """Event-engine execution plain vs with the live timeline fold."""
    from repro.obs.timeline import TimelineAggregator
    from repro.runtime.engine import DiscreteEventEngine
    from repro.runtime.executor import (
        execute_plan,
        plan_to_chains,
        replicate_chains,
    )

    soc = get_soc(SOC)
    models = [get_model(name) for name in MODEL_MIX]
    report = Hetero2PipePlanner(soc).plan(models)
    chains = replicate_chains(plan_to_chains(report.plan), 4)
    stages = [len(chain) for chain in chains]
    processors = [p.name for p in soc.processors]

    def run_plain():
        execute_plan(report.plan, record=False)

    def run_with_timeline():
        engine = DiscreteEventEngine(
            soc, chains, keep_events=True, record=False
        )
        timeline = TimelineAggregator(processors, stages, window_ms=25.0)
        cursor = 0
        while engine.step():
            log = engine.event_log
            for event in log[cursor:]:
                timeline.observe(event)
            cursor = len(log)
        for event in engine.event_log[cursor:]:
            timeline.observe(event)
        timeline.finish(engine.result().makespan_ms)

    # The telemetry run simulates 4x the requests of the plain run;
    # normalize per request so the ratio compares per-request cost.
    for _ in range(WARMUP_ROUNDS):
        run_plain()
        run_with_timeline()
    plain_s = bench.best_of_s(TIMED_ROUNDS, run_plain)
    timeline_s = bench.best_of_s(TIMED_ROUNDS, run_with_timeline) / 4.0
    return plain_s, timeline_s


def main():
    json_path = None
    argv = sys.argv[1:]
    if argv[:1] == ["--json"] and len(argv) == 2:
        json_path = argv[1]
    elif argv:
        print(f"usage: {sys.argv[0]} [--json PATH]", file=sys.stderr)
        return 2
    disabled_s, enabled_s = measure()
    plain_s, timeline_s = measure_timeline()
    if json_path:
        rows = [
            bench.bench_row(scenario, SOC, [value_s * 1e3])
            for scenario, value_s in (
                ("guard.overhead.disabled", disabled_s),
                ("guard.overhead.enabled", enabled_s),
                ("guard.overhead.exec_plain", plain_s),
                ("guard.overhead.exec_timeline", timeline_s),
            )
        ]
        bench.write_bench_json(json_path, bench.bench_doc(rows))
    limit_s = disabled_s * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S
    overhead = enabled_s / disabled_s - 1.0
    print(f"planner.plan best-of-{TIMED_ROUNDS}:")
    print(f"  recorder disabled : {disabled_s * 1e3:8.2f} ms")
    print(f"  recorder enabled  : {enabled_s * 1e3:8.2f} ms "
          f"({overhead:+.1%})")
    print(f"  budget            : {limit_s * 1e3:8.2f} ms "
          f"(+{MAX_OVERHEAD:.0%} and {ABS_SLACK_S * 1e3:.0f} ms slack)")
    failed = False
    if enabled_s > limit_s:
        print("FAIL: instrumented planning exceeds the overhead budget")
        failed = True
    tl_limit_s = plain_s * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S
    tl_overhead = timeline_s / plain_s - 1.0
    print(f"execute_plan best-of-{TIMED_ROUNDS} (per request mix):")
    print(f"  plain engine run  : {plain_s * 1e3:8.2f} ms")
    print(f"  with timeline fold: {timeline_s * 1e3:8.2f} ms "
          f"({tl_overhead:+.1%})")
    print(f"  budget            : {tl_limit_s * 1e3:8.2f} ms "
          f"(+{MAX_OVERHEAD:.0%} and {ABS_SLACK_S * 1e3:.0f} ms slack)")
    if timeline_s > tl_limit_s:
        print("FAIL: streaming telemetry exceeds the overhead budget")
        failed = True
    if failed:
        return 1
    print("OK: observability overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
