"""Fig. 13 benchmark: batched-latency growth rates of lightweight models."""

from repro.experiments import fig13_batching


def test_bench_fig13_batching(run_once):
    rows = run_once(fig13_batching.run)
    print("\n" + fig13_batching.render(rows))

    assert rows
    for row in rows:
        # Affine latency: near-flat growth-rate series per processor.
        spread = max(row.growth_rates) - min(row.growth_rates)
        assert spread <= 0.25 * max(row.growth_rates)
        assert row.marginal_ms > 0
        assert row.fixed_ms > 0

    by_key = {(r.model, r.processor): r for r in rows}
    # The NPU's marginal per-sample cost is the cheapest; the small
    # cluster's the dearest — batching is how light models fill a
    # heavy-model-sized stage on any of them.
    for model in ("mobilenetv2", "squeezenet"):
        marginals = {
            proc: by_key[(model, proc)].marginal_ms
            for proc in ("npu", "cpu_big", "cpu_small")
        }
        assert marginals["npu"] < marginals["cpu_big"] < marginals["cpu_small"]
