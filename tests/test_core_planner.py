"""End-to-end tests of the Hetero2Pipe planner facade."""

import pytest

from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.runtime.executor import execute_plan
from repro.runtime.schedule import async_makespan_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def planner(kirin):
    return Hetero2PipePlanner(kirin)


MIXED = ["yolov4", "bert", "squeezenet", "resnet50", "vit"]


class TestPlannerBasics:
    def test_empty_request_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan([])

    def test_single_model_plan(self, planner):
        report = planner.plan([get_model("resnet50")])
        report.plan.validate()
        assert report.plan.num_requests == 1
        assert len(report.partitions) == 1
        assert len(report.scores) == 1

    def test_plan_is_valid_and_executable(self, planner):
        report = planner.plan([get_model(n) for n in MIXED])
        report.plan.validate()
        result = execute_plan(report.plan)
        assert result.makespan_ms > 0
        assert result.num_requests == len(MIXED)

    def test_order_is_permutation(self, planner):
        report = planner.plan([get_model(n) for n in MIXED])
        assert sorted(report.plan.order) == list(range(len(MIXED)))

    def test_scores_follow_input_order(self, planner):
        report = planner.plan([get_model(n) for n in MIXED])
        assert [s.model_name for s in report.scores] == MIXED

    def test_report_contains_partitions_per_model(self, planner):
        report = planner.plan([get_model(n) for n in MIXED])
        for name, partition in zip(MIXED, report.partitions):
            n_layers = get_model(name).num_layers
            covered = sum(
                s[1] - s[0] + 1 for s in partition.slices if s is not None
            )
            assert covered == n_layers


class TestAblations:
    def test_no_ct_config(self):
        config = PlannerConfig.no_contention_or_tail()
        assert not config.enable_mitigation
        assert not config.enable_tail_optimization
        assert config.enable_work_stealing

    def test_full_never_worse_than_no_ct(self, kirin, planner):
        no_ct = Hetero2PipePlanner(kirin, PlannerConfig.no_contention_or_tail())
        models = [get_model(n) for n in MIXED]
        full_cost = async_makespan_ms(planner.plan(models).plan)
        no_ct_cost = async_makespan_ms(no_ct.plan(models).plan)
        assert full_cost <= no_ct_cost + 1e-6

    def test_stealing_disabled_still_plans(self, kirin):
        config = PlannerConfig(
            enable_work_stealing=False,
            enable_mitigation=False,
            enable_tail_optimization=False,
        )
        planner = Hetero2PipePlanner(kirin, config)
        report = planner.plan([get_model(n) for n in MIXED])
        report.plan.validate()
        assert report.stealing_moves == 0

    def test_tail_only_config(self, kirin):
        config = PlannerConfig(
            enable_work_stealing=False, enable_mitigation=False
        )
        planner = Hetero2PipePlanner(kirin, config)
        report = planner.plan([get_model(n) for n in MIXED])
        report.plan.validate()

    def test_mitigation_only_accepted_when_beneficial(self, kirin, planner):
        # With mitigation enabled the planner must return the better of
        # the arrival order and the mitigated order.
        models = [get_model(n) for n in MIXED]
        no_mit = Hetero2PipePlanner(
            kirin, PlannerConfig(enable_mitigation=False)
        )
        with_mit = planner.plan(models)
        without = no_mit.plan(models)
        assert async_makespan_ms(with_mit.plan) <= async_makespan_ms(
            without.plan
        ) + 1e-6


class TestCrossSoc:
    @pytest.mark.parametrize(
        "soc_name", ["kirin990", "snapdragon778g", "snapdragon870"]
    )
    def test_plans_on_all_platforms(self, soc_name):
        soc = get_soc(soc_name)
        planner = Hetero2PipePlanner(soc)
        report = planner.plan([get_model(n) for n in MIXED])
        report.plan.validate()
        result = execute_plan(report.plan)
        assert result.makespan_ms > 0

    def test_snapdragon_plan_has_no_npu_stage(self):
        soc = get_soc("snapdragon870")
        planner = Hetero2PipePlanner(soc)
        report = planner.plan([get_model("vit"), get_model("resnet50")])
        names = {p.name for p in report.plan.processors}
        assert "npu" not in names


class TestBeatsSerial:
    def test_multi_model_beats_serial_cpu(self, kirin, planner):
        from repro.baselines.mnn_serial import plan_mnn_serial

        models = [get_model(n) for n in MIXED]
        h2p = execute_plan(planner.plan(models).plan).makespan_ms
        serial = execute_plan(plan_mnn_serial(kirin, models)).makespan_ms
        assert h2p < serial / 1.5  # comfortably faster
