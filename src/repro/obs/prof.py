"""Phase-attributed self-profiling over the obs span tree.

Naming note — two "profilers" live in this repo and they are *not* the
same thing: :mod:`repro.profiling` is **hardware latency profiling**
(the paper's offline step — solo latencies, PMU features, co-execution
slowdowns of the *simulated SoC*), while this module is **software
self-profiling** — where does the *planner's own wall time* go?  See
``docs/ARCHITECTURE.md`` for the disambiguation.

The profiler rides the span tree PR 2 already records: every planner
stage opens a span (``plan.partition``, ``plan.mitigate``,
``plan.vertical``, ``plan.objective``, ...), so attributing wall time is
a pure function of an :class:`~repro.obs.recorder.InMemoryRecorder`'s
``spans`` list — no new instrumentation sites, no second clock, and the
disabled path stays exactly as cheap as before.

Three layers:

* :func:`profile_spans` — fold span trees into per-phase and per-span
  statistics: call counts, *inclusive* time (span duration) and
  *exclusive* time (duration minus children; exclusive times across all
  spans sum exactly to the root total, so attribution never double
  counts).  Span names map to coarse phases (``partition`` /
  ``objective`` / ``stealing`` / ``mitigation`` / ``online`` / ...)
  through :data:`DEFAULT_PHASES`.
* Exporters — :func:`collapsed_stacks` (flamegraph.pl format),
  :func:`speedscope_document` (speedscope "evented" JSON) and
  :func:`phase_track_events` (Chrome-trace ``X`` slices merged into the
  Perfetto export by :func:`repro.runtime.tracing.to_chrome_trace`).
* :class:`ProfilingRecorder` — an :class:`InMemoryRecorder` that can
  additionally scope a ``cProfile`` capture to one span name and
  attribute net ``tracemalloc`` allocations to every span (and hence to
  phases).

The ``hetero2pipe profile`` CLI verb fronts all of it; the JSON schema
is ``hetero2pipe.profile.v1`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .recorder import InMemoryRecorder
from .spans import Span

#: Stable schema marker of the ``hetero2pipe profile --json`` document.
PROFILE_SCHEMA = "hetero2pipe.profile.v1"

#: Span name -> coarse phase.  Unknown spans fall into ``other``.
DEFAULT_PHASES: Dict[str, str] = {
    "plan.profile": "profiling",
    "plan.partition": "partition",
    "plan.classify": "classify",
    "plan.mitigate": "mitigation",
    "plan.objective": "objective",
    "plan.vertical": "stealing",
    "plan.steal": "stealing",
    "plan.refine_global": "stealing",
    "plan.placements": "stealing",
    "plan.tail": "stealing",
    "stream.window": "online",
    "execute": "execute",
}

#: Phase assigned to spans with no mapping (root ``plan`` glue, etc.).
OTHER_PHASE = "other"

PhaseOf = Callable[[str], str]


def default_phase_of(span_name: str) -> str:
    """Coarse phase of a span name under :data:`DEFAULT_PHASES`."""
    return DEFAULT_PHASES.get(span_name, OTHER_PHASE)


@dataclass
class SpanStat:
    """Aggregate statistics for one span *name* across all occurrences."""

    name: str
    phase: str
    calls: int = 0
    inclusive_ms: float = 0.0
    exclusive_ms: float = 0.0
    min_ms: float = float("inf")
    max_ms: float = 0.0
    alloc_net_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "calls": self.calls,
            "inclusive_ms": self.inclusive_ms,
            "exclusive_ms": self.exclusive_ms,
            "min_ms": self.min_ms if self.calls else 0.0,
            "max_ms": self.max_ms,
            "alloc_net_bytes": self.alloc_net_bytes,
        }


@dataclass
class PhaseStat:
    """Aggregate statistics for one phase.

    ``inclusive_ms`` sums only *top-most* spans of the phase (a
    ``plan.steal`` nested under ``plan.vertical`` — both ``stealing`` —
    is not counted twice); ``exclusive_ms`` sums every span's
    self-time, so exclusive totals across phases partition the run.
    """

    phase: str
    calls: int = 0
    inclusive_ms: float = 0.0
    exclusive_ms: float = 0.0
    alloc_net_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "inclusive_ms": self.inclusive_ms,
            "exclusive_ms": self.exclusive_ms,
            "alloc_net_bytes": self.alloc_net_bytes,
        }


@dataclass
class PhaseProfile:
    """The folded profile of one recorded run."""

    total_ms: float
    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    spans: Dict[str, SpanStat] = field(default_factory=dict)

    @property
    def attributed_ms(self) -> float:
        """Exclusive time landing in a *named* phase (not ``other``)."""
        return sum(
            p.exclusive_ms for p in self.phases.values()
            if p.phase != OTHER_PHASE
        )

    @property
    def attributed_frac(self) -> float:
        """Fraction of total inclusive wall time attributed to named
        phases; the acceptance bar for a cold plan is >= 0.9."""
        if self.total_ms <= 0.0:
            return 0.0
        return self.attributed_ms / self.total_ms

    def phases_by_exclusive(self) -> List[PhaseStat]:
        return sorted(
            self.phases.values(), key=lambda p: p.exclusive_ms, reverse=True
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_ms": self.total_ms,
            "attributed_frac": self.attributed_frac,
            "phases": {
                name: stat.to_dict()
                for name, stat in sorted(self.phases.items())
            },
            "spans": {
                name: stat.to_dict()
                for name, stat in sorted(self.spans.items())
            },
        }


def _span_exclusive_ms(span: Span) -> float:
    """Self-time: duration minus the children's durations (>= 0)."""
    child_ms = sum(c.duration_ms for c in span.children)
    return max(0.0, span.duration_ms - child_ms)


def _alloc_net_bytes(span: Span) -> int:
    value = span.attrs.get("alloc_net_bytes")
    return int(value) if isinstance(value, (int, float)) else 0


def profile_spans(
    roots: Sequence[Span],
    phase_of: Optional[PhaseOf] = None,
) -> PhaseProfile:
    """Fold span trees into the per-phase / per-span profile.

    Args:
        roots: Root spans (e.g. ``recorder.spans``); the whole trees are
            walked.
        phase_of: Span-name -> phase mapping; defaults to
            :func:`default_phase_of`.
    """
    classify = phase_of or default_phase_of
    total_ms = sum(root.duration_ms for root in roots)
    profile = PhaseProfile(total_ms=total_ms)

    def visit(span: Span, ancestor_phases: Tuple[str, ...]) -> None:
        phase = classify(span.name)
        exclusive = _span_exclusive_ms(span)
        inclusive = span.duration_ms
        alloc = _alloc_net_bytes(span)

        stat = profile.spans.get(span.name)
        if stat is None:
            stat = profile.spans[span.name] = SpanStat(span.name, phase)
        stat.calls += 1
        stat.inclusive_ms += inclusive
        stat.exclusive_ms += exclusive
        stat.min_ms = min(stat.min_ms, inclusive)
        stat.max_ms = max(stat.max_ms, inclusive)
        stat.alloc_net_bytes += alloc

        pstat = profile.phases.get(phase)
        if pstat is None:
            pstat = profile.phases[phase] = PhaseStat(phase)
        pstat.calls += 1
        pstat.exclusive_ms += exclusive
        if phase not in ancestor_phases:
            # Top-most span of its phase on this path: count inclusive
            # once, and attribute the *net* allocation here too (the
            # children's nets are already inside the parent's delta).
            pstat.inclusive_ms += inclusive
            pstat.alloc_net_bytes += alloc

        for child in span.children:
            visit(child, ancestor_phases + (phase,))

    for root in roots:
        visit(root, ())
    return profile


def render_phase_table(profile: PhaseProfile, width: int = 72) -> str:
    """The terminal phase table ``hetero2pipe profile`` prints.

    One row per phase (descending exclusive time) with an inline bar,
    then the attribution summary line.
    """
    lines = [
        f"{'phase':<12s} {'calls':>7s} {'excl ms':>10s} {'incl ms':>10s} "
        f"{'excl %':>7s}"
    ]
    bar_width = max(8, width - 52)
    for stat in profile.phases_by_exclusive():
        frac = (
            stat.exclusive_ms / profile.total_ms if profile.total_ms else 0.0
        )
        bar = "#" * max(0, round(frac * bar_width))
        lines.append(
            f"{stat.phase:<12s} {stat.calls:>7d} {stat.exclusive_ms:>10.2f} "
            f"{stat.inclusive_ms:>10.2f} {frac * 100:>6.1f}% {bar}"
        )
    lines.append(
        f"total {profile.total_ms:.2f} ms, "
        f"{profile.attributed_frac * 100:.1f}% attributed to named phases"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------- exports


def collapsed_stacks(
    roots: Sequence[Span],
    phase_of: Optional[PhaseOf] = None,
) -> str:
    """Spans as collapsed stacks (``flamegraph.pl`` input format).

    One line per distinct span path — ``plan;plan.candidate;plan.steal
    1234`` — whose value is the path's summed *exclusive* time in
    integer microseconds, so the flame graph's widths add up exactly to
    the recorded total.  Zero-weight lines are dropped.
    """
    del phase_of  # stacks are by span name; phases are a separate view
    weights: Dict[Tuple[str, ...], int] = {}

    def visit(span: Span, path: Tuple[str, ...]) -> None:
        stack = path + (span.name,)
        weight = round(_span_exclusive_ms(span) * 1e3)
        if weight > 0:
            weights[stack] = weights.get(stack, 0) + weight
        for child in span.children:
            visit(child, stack)

    for root in roots:
        visit(root, ())
    lines = [
        ";".join(stack) + f" {weight}"
        for stack, weight in sorted(weights.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


#: Schema URL speedscope documents self-identify with.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def speedscope_document(
    roots: Sequence[Span],
    name: str = "hetero2pipe profile",
) -> Dict[str, object]:
    """Spans as a speedscope ``evented`` profile (JSON-ready dict).

    Frames are keyed by span name; open/close events follow the span
    tree's nesting in microseconds relative to the earliest root, so the
    document drags straight into https://www.speedscope.app.
    """
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, object]] = []
    events: List[Dict[str, object]] = []
    if not roots:
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "shared": {"frames": []},
            "profiles": [],
        }
    t0 = min(root.start_s for root in roots)
    end_value = 0.0

    def frame_of(span_name: str) -> int:
        idx = frame_index.get(span_name)
        if idx is None:
            idx = frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return idx

    def visit(span: Span) -> None:
        nonlocal end_value
        start_us = (span.start_s - t0) * 1e6
        end_s = span.end_s if span.end_s is not None else span.start_s
        end_us = max(start_us, (end_s - t0) * 1e6)
        end_value = max(end_value, end_us)
        events.append({"type": "O", "frame": frame_of(span.name), "at": start_us})
        for child in span.children:
            visit(child)
        events.append({"type": "C", "frame": frame_of(span.name), "at": end_us})

    for root in sorted(roots, key=lambda r: r.start_s):
        visit(root)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "microseconds",
                "startValue": 0.0,
                "endValue": end_value,
                "events": events,
            }
        ],
    }


def phase_track_events(
    profile: PhaseProfile,
    pid: int,
    tid: int = 1,
    ts0_us: float = 0.0,
) -> List[Dict[str, object]]:
    """The profile as a Chrome-trace phase track (``X`` slices).

    Phases are laid out back-to-back (descending exclusive time) so the
    track reads as a one-row flame summary of where the planner's wall
    time went; merged under the planner pid by
    :func:`repro.runtime.tracing.to_chrome_trace`.
    """
    events: List[Dict[str, object]] = []
    cursor_us = ts0_us
    for stat in profile.phases_by_exclusive():
        dur_us = stat.exclusive_ms * 1e3
        if dur_us <= 0.0:
            continue
        frac = (
            stat.exclusive_ms / profile.total_ms if profile.total_ms else 0.0
        )
        events.append(
            {
                "name": f"phase:{stat.phase}",
                "cat": "profile",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": cursor_us,
                "dur": dur_us,
                "args": {
                    "calls": stat.calls,
                    "inclusive_ms": round(stat.inclusive_ms, 4),
                    "exclusive_frac": round(frac, 4),
                },
            }
        )
        cursor_us += dur_us
    return events


# ------------------------------------------------- capturing recorder


class ProfilingRecorder(InMemoryRecorder):
    """An in-memory recorder with optional deep-capture hooks.

    Args:
        cprofile_span: When set, a single :class:`cProfile.Profile` is
            enabled while a span of this *name* is open (nested
            occurrences share one capture), so the function-level
            profile covers exactly that region — pass ``"plan"`` to
            profile planning and nothing else.
        trace_allocations: When true (and :mod:`tracemalloc` is
            tracing — see :func:`profiling_session`), every closed span
            carries ``alloc_net_bytes``: the net traced-memory delta
            across its lifetime, which :func:`profile_spans` rolls up
            into per-phase allocation attribution.
    """

    def __init__(
        self,
        cprofile_span: Optional[str] = None,
        trace_allocations: bool = False,
    ) -> None:
        super().__init__()
        self.cprofile_span = cprofile_span
        self.trace_allocations = trace_allocations
        self.cprofile: Optional[cProfile.Profile] = (
            cProfile.Profile() if cprofile_span else None
        )
        self._capture_depth = 0
        self._alloc_start: Dict[int, int] = {}

    def start_span(self, name: str, attrs: Dict[str, object]) -> Span:
        span = super().start_span(name, attrs)
        if self.trace_allocations and tracemalloc.is_tracing():
            self._alloc_start[id(span)] = tracemalloc.get_traced_memory()[0]
        if self.cprofile is not None and name == self.cprofile_span:
            if self._capture_depth == 0:
                self.cprofile.enable()
            self._capture_depth += 1
        return span

    def _close_span(self, span: Span) -> None:
        if self.cprofile is not None and span.name == self.cprofile_span:
            self._capture_depth = max(0, self._capture_depth - 1)
            if self._capture_depth == 0:
                self.cprofile.disable()
        start = self._alloc_start.pop(id(span), None)
        if start is not None and tracemalloc.is_tracing():
            span.attrs["alloc_net_bytes"] = (
                tracemalloc.get_traced_memory()[0] - start
            )
        super()._close_span(span)

    def cprofile_rows(self, top: int = 15) -> List[Dict[str, object]]:
        """The hottest functions of the scoped capture (by cumulative
        time), as JSON-ready rows; empty when capture was off."""
        if self.cprofile is None:
            return []
        stats = pstats.Stats(self.cprofile)
        rows: List[Dict[str, object]] = []
        entries = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][3],  # cumulative seconds
            reverse=True,
        )
        for (filename, lineno, func), row in entries[: max(0, top)]:
            cc, ncalls, tottime, cumtime = row[0], row[1], row[2], row[3]
            del cc
            rows.append(
                {
                    "function": f"{filename}:{lineno}({func})",
                    "calls": ncalls,
                    "self_s": tottime,
                    "cumulative_s": cumtime,
                }
            )
        return rows


class _ProfilingSession:
    """Context manager pairing a :class:`ProfilingRecorder` with the
    process-global recorder slot and the tracemalloc lifecycle."""

    def __init__(
        self, cprofile_span: Optional[str], trace_allocations: bool
    ) -> None:
        self.recorder = ProfilingRecorder(
            cprofile_span=cprofile_span,
            trace_allocations=trace_allocations,
        )
        self._trace_allocations = trace_allocations
        self._started_tracemalloc = False
        self._previous: Optional[object] = None

    def __enter__(self) -> ProfilingRecorder:
        from .recorder import set_recorder

        if self._trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: object) -> None:
        from .recorder import Recorder, set_recorder

        assert isinstance(self._previous, Recorder)
        set_recorder(self._previous)
        if self._started_tracemalloc:
            tracemalloc.stop()


def profiling_session(
    cprofile_span: Optional[str] = None,
    trace_allocations: bool = False,
) -> _ProfilingSession:
    """Scoped self-profiling: installs a :class:`ProfilingRecorder`
    process-wide and manages :mod:`tracemalloc` start/stop::

        with prof.profiling_session(cprofile_span="plan") as rec:
            planner.plan(models)
        table = prof.render_phase_table(prof.profile_spans(rec.spans))
    """
    return _ProfilingSession(cprofile_span, trace_allocations)
