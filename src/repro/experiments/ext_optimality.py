"""Extension experiment: absolute optimality gaps.

Fig. 8(a) measures Hetero2Pipe against exhaustive search — a *relative*
reference that only dominates its own grid.  This study adds the
absolute view: for random workloads, the planner's achieved makespan
against the contention-free theoretical lower bound
(:mod:`repro.core.bounds`), split by whether the workload contains
NPU-incompatible models.

Interpretation note: the *bound*, not the planner, is what varies most
between the two groups.  The work bound divides each model's best-case
time by K processors — on NPU-clean workloads every model's best case
is the same single NPU, so the bound assumes a K-way parallelism the
hardware cannot offer and the measured gap is dominated by bound
looseness.  Workloads containing fallback-bound models spread naturally
over CPU/GPU, the bound tightens, and Hetero2Pipe lands much closer to
it — the regime where the gap actually reflects planning quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.bounds import makespan_lower_bounds
from ..core.planner import Hetero2PipePlanner
from ..hardware.soc import SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.generator import sample_combinations
from .common import format_table


@dataclass(frozen=True)
class GapPoint:
    """One workload's achieved-vs-bound outcome."""

    index: int
    num_models: int
    has_fallback_models: bool
    achieved_ms: float
    bound_ms: float

    @property
    def gap(self) -> float:
        return self.achieved_ms / self.bound_ms - 1.0


def run(
    soc: Optional[SocSpec] = None,
    num_combinations: int = 30,
    seed: int = 21,
) -> List[GapPoint]:
    """Measure the gap distribution over random workloads."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    points: List[GapPoint] = []
    for spec in sample_combinations(count=num_combinations, seed=seed):
        models = spec.models()
        achieved = execute_plan(planner.plan(models).plan).makespan_ms
        bounds = makespan_lower_bounds(soc, models, profiler)
        points.append(
            GapPoint(
                index=spec.index,
                num_models=len(models),
                has_fallback_models=any(not m.npu_supported() for m in models),
                achieved_ms=achieved,
                bound_ms=bounds.lower_bound_ms,
            )
        )
    return points


def summarize(points: Sequence[GapPoint]) -> dict:
    """Mean gaps overall and by fallback presence."""
    def mean_gap(subset: Sequence[GapPoint]) -> float:
        if not subset:
            return 0.0
        return sum(p.gap for p in subset) / len(subset)

    with_fb = [p for p in points if p.has_fallback_models]
    without = [p for p in points if not p.has_fallback_models]
    return {
        "overall": mean_gap(points),
        "with_fallback": mean_gap(with_fb),
        "npu_clean": mean_gap(without),
        "count_with_fallback": len(with_fb),
        "count_clean": len(without),
    }


def render(points: Sequence[GapPoint]) -> str:
    headers = ["workload", "models", "fallback", "achieved_ms", "bound_ms", "gap"]
    body = [
        [
            p.index,
            p.num_models,
            "yes" if p.has_fallback_models else "no",
            p.achieved_ms,
            p.bound_ms,
            f"{p.gap * 100:.0f}%",
        ]
        for p in points
    ]
    stats = summarize(points)
    return (
        format_table(headers, body)
        + f"\nmean gap overall: {stats['overall'] * 100:.0f}%"
        + f"\nmean gap with NPU-incompatible models "
        + f"({stats['count_with_fallback']}): "
        + f"{stats['with_fallback'] * 100:.0f}%"
        + f"\nmean gap NPU-clean ({stats['count_clean']}): "
        + f"{stats['npu_clean'] * 100:.0f}%"
    )


def main(num_combinations: int = 15) -> str:
    return render(run(num_combinations=num_combinations))


if __name__ == "__main__":
    print(main())
