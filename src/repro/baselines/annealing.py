"""Simulated-annealing vertical planner (Fig. 8a meta-heuristic).

Explores the same decision space as Hetero2Pipe's vertical phase —
request order plus per-request stage placement — with a standard
geometric-cooling Metropolis walk over three move types: re-placing one
request, swapping two adjacent requests, and shifting one boundary
layer.  The paper uses it to show that the structured two-step planner
beats a generic meta-heuristic at far lower cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.partition import partition_model
from ..core.plan import PipelinePlan, StageAssignment
from ..core.stealing import move_boundary_layer, single_processor_assignment
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler
from ..runtime.schedule import async_makespan_ms


@dataclass(frozen=True)
class AnnealingConfig:
    """Cooling schedule and move mix."""

    initial_temperature: float = 0.30  # relative to the initial cost
    cooling: float = 0.97
    steps: int = 600
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")


def _initial_plan(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: SocProfiler,
) -> PipelinePlan:
    processors = tuple(soc.processors)
    assignments = [
        StageAssignment(
            profile=profiler.profile(m),
            slices=list(partition_model(profiler.profile(m), processors).slices),
        )
        for m in models
    ]
    return PipelinePlan(soc=soc, processors=processors, assignments=assignments)


def anneal_plan(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
    config: Optional[AnnealingConfig] = None,
) -> Tuple[PipelinePlan, float]:
    """Run simulated annealing and return the best plan found.

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    config = config or AnnealingConfig()
    rng = np.random.default_rng(config.seed)

    plan = _initial_plan(soc, models, profiler)
    cost = async_makespan_ms(plan)
    best_plan = plan.copy()
    best_cost = cost
    temperature = config.initial_temperature * max(cost, 1e-6)

    for _ in range(config.steps):
        trial = plan.copy()
        kind = rng.integers(0, 3)
        if kind == 0 and trial.num_requests >= 1:
            # Re-place one request on a random single stage (or back to DP).
            i = int(rng.integers(0, trial.num_requests))
            stage = int(rng.integers(0, trial.depth))
            candidate = single_processor_assignment(
                trial.assignments[i], stage, trial.processors
            )
            if candidate is None:
                continue
            trial.assignments[i] = candidate
        elif kind == 1 and trial.num_requests >= 2:
            i = int(rng.integers(0, trial.num_requests - 1))
            trial.assignments[i], trial.assignments[i + 1] = (
                trial.assignments[i + 1],
                trial.assignments[i],
            )
        else:
            i = int(rng.integers(0, trial.num_requests))
            s = int(rng.integers(0, trial.depth - 1)) if trial.depth > 1 else 0
            direction = (s, s + 1) if rng.random() < 0.5 else (s + 1, s)
            if not move_boundary_layer(
                trial.assignments[i], direction[0], direction[1], trial.processors
            ):
                continue

        trial_cost = async_makespan_ms(trial)
        delta = trial_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            plan, cost = trial, trial_cost
            if cost < best_cost:
                best_plan, best_cost = plan.copy(), cost
        temperature *= config.cooling

    return best_plan, best_cost
