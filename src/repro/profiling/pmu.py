"""Synthetic Processor Monitor Unit (PMU) counters.

The paper reads three perf events from the CPU while a model executes
solo — Instructions Per Cycle, Cache Miss Rate and Stalled Cycles
Backend (Fig. 2b) — and regresses them against contention intensity
(Eq. 1) so new requests can be scored without profiling co-execution
pairs.

We synthesize the same three counters from the roofline decomposition:
a memory-bound execution has low IPC, high miss rate and high backend
stalls.  Deterministic measurement noise keeps the regression honest
(features correlate with, but do not equal, the ground truth).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from ..hardware.processor import ProcessorSpec
from .profiler import ModelProfile

#: Peak sustained IPC of a big out-of-order ARM core (A76/A77/A78 class).
_PEAK_IPC = 3.2

#: Cache line size used to convert traffic to miss counts.
_CACHE_LINE_BYTES = 64.0

#: Instructions executed per FLOP (NEON packs ~4 FP16 FLOPs/instruction,
#: plus address/loop bookkeeping).
_INSTR_PER_FLOP = 0.35

#: Relative half-width of deterministic measurement noise.
_NOISE_SPAN = 0.08


@dataclass(frozen=True)
class PerfCounters:
    """The three perf-event features of Eq. 1, for one execution."""

    ipc: float
    cache_miss_rate: float
    stalled_backend: float

    def as_features(self) -> Tuple[float, float, float]:
        """Feature vector X = {x1, x2, x3} for the regression."""
        return (self.ipc, self.cache_miss_rate, self.stalled_backend)


def _noise(tag: str) -> float:
    digest = zlib.crc32(tag.encode())
    unit = (digest % 10_000) / 10_000.0
    return 1.0 + _NOISE_SPAN * (2.0 * unit - 1.0)


def measure_counters(
    profile: ModelProfile,
    proc: ProcessorSpec,
    start: int = 0,
    end: int | None = None,
) -> PerfCounters:
    """Synthesize PMU counters for a slice executing solo on ``proc``.

    Args:
        profile: Solo profile of the model on the target SoC.
        proc: Processor the counters are read on (the paper reads the CPU
            PMU; embedded GPUs lack rich counters).
        start: First layer of the slice.
        end: Last layer (inclusive); defaults to the whole model.

    Returns:
        A :class:`PerfCounters` with deterministic noise applied.
    """
    if end is None:
        end = profile.model.num_layers - 1
    mem_frac = profile.memory_fraction(proc, start, end)
    traffic = profile.traffic_bytes(proc, start, end)
    flops = profile.model.slice_flops(start, end)

    tag = f"{profile.model.name}:{proc.name}:{start}:{end}"
    ipc = _PEAK_IPC * (1.0 - 0.78 * mem_frac) * _noise(tag + ":ipc")

    instructions = max(1.0, flops * _INSTR_PER_FLOP)
    misses = traffic / _CACHE_LINE_BYTES
    miss_rate = min(0.60, misses / instructions * 10.0) * _noise(tag + ":miss")

    stalled = min(0.95, 0.12 + 0.75 * mem_frac) * _noise(tag + ":stall")
    return PerfCounters(
        ipc=ipc, cache_miss_rate=miss_rate, stalled_backend=stalled
    )


def ground_truth_intensity(
    profile: ModelProfile,
    proc: ProcessorSpec,
    start: int = 0,
    end: int | None = None,
    reference_bandwidth_gbps: float = 10.0,
) -> float:
    """Ground-truth contention intensity of a solo execution.

    Defined as the execution's average bus-demand rate normalized by a
    reference bandwidth.  This is the regression target Y in Eq. 1; the
    deployed system estimates it from PMU features only (Observation 1
    justifies using solo demand as the co-execution proxy).
    """
    if end is None:
        end = profile.model.num_layers - 1
    rate = profile.traffic_rate_gbps(proc, start, end)
    return rate / reference_bandwidth_gbps
