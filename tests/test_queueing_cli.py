"""Tests for the queueing analysis and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.plan import PipelinePlan
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.runtime.executor import execute_plan
from repro.runtime.queueing import heterogeneous_queueing, serial_queueing
from repro.workloads.generator import arrival_times_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


class TestQueueing:
    def test_serial_delays_accumulate(self, kirin):
        models = [get_model("resnet50")] * 6
        arrivals = arrival_times_ms(6, 30.0)
        report = serial_queueing(kirin, models, arrivals)
        delays = report.queueing_delay_ms
        # ResNet50 takes ~70 ms on CPU big but arrives every 30 ms.
        assert delays[-1] > delays[0]
        assert delays[-1] > 100.0

    def test_heterogeneous_reduces_backlog(self, kirin):
        models = [get_model("resnet50")] * 6
        arrivals = arrival_times_ms(6, 30.0)
        serial = serial_queueing(kirin, models, arrivals)
        hetero = heterogeneous_queueing(kirin, models, arrivals)
        assert (
            hetero.mean_queueing_delay_ms < serial.mean_queueing_delay_ms
        )

    def test_completion_latency_positive(self, kirin):
        models = [get_model("googlenet")] * 3
        arrivals = arrival_times_ms(3, 50.0)
        report = serial_queueing(kirin, models, arrivals)
        assert all(l > 0 for l in report.completion_latency_ms)

    def test_delays_nonnegative(self, kirin):
        models = [get_model("googlenet")] * 4
        arrivals = arrival_times_ms(4, 200.0)
        report = serial_queueing(kirin, models, arrivals)
        assert all(d >= -1e-6 for d in report.queueing_delay_ms)


class _PermutingPlanner:
    """Planner stub that reverses the execution order of a real plan.

    Mitigation reorders rarely trigger on small mixes, so the
    regression test forces a non-identity ``plan.order`` explicitly:
    ``assignments[pos]`` serves original request ``order[pos]``.
    """

    def __init__(self, soc):
        self._soc = soc

    def plan(self, models):
        report = Hetero2PipePlanner(self._soc).plan(models)
        base = report.plan
        order = tuple(reversed(range(len(base.assignments))))
        permuted = PipelinePlan(
            soc=base.soc,
            processors=base.processors,
            assignments=[base.assignments[i] for i in order],
            order=order,
        )
        self.permuted_plan = permuted

        class _Report:
            plan = permuted

        return _Report()


class TestQueueingOrderRegression:
    """Arrival/start pairing must survive a mitigation re-ordering.

    The historical bug: ``heterogeneous_queueing`` fed the simulator
    execution-order arrivals (correct) but returned the simulator's
    execution-position outputs as if they were original-request-indexed
    — pairing request A's arrival with request B's start whenever
    ``plan.order`` was not the identity.
    """

    def test_non_identity_order_maps_back_to_original_requests(self, kirin):
        models = [get_model("resnet50"), get_model("squeezenet")]
        arrivals = [0.0, 40.0]
        planner = _PermutingPlanner(kirin)
        report = heterogeneous_queueing(kirin, models, arrivals, planner)

        # The report is original-request-indexed: arrivals unpermuted.
        assert report.arrival_ms == arrivals

        # Reference: simulate the permuted plan directly and invert the
        # permutation by hand.  order == (1, 0): execution position 0
        # serves original request 1 and vice versa.
        result = execute_plan(
            planner.permuted_plan,
            arrivals=[arrivals[1], arrivals[0]],
            record=False,
        )
        assert report.finish_ms[0] == pytest.approx(
            result.request_finish_ms[1]
        )
        assert report.finish_ms[1] == pytest.approx(
            result.request_finish_ms[0]
        )
        assert all(d >= -1e-6 for d in report.queueing_delay_ms)

    def test_identity_order_unchanged(self, kirin):
        models = [get_model("resnet50")] * 3
        arrivals = arrival_times_ms(3, 30.0)
        report = heterogeneous_queueing(kirin, models, arrivals)
        assert report.arrival_ms == list(arrivals)
        assert all(d >= -1e-6 for d in report.queueing_delay_ms)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "kirin990" in out

    def test_run_known_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Hetero2Pipe" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_plan_command(self, capsys):
        code = main(
            ["plan", "--soc", "kirin990", "--models", "vit,resnet50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "throughput" in out

    def test_plan_no_ct_flag(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--soc",
                    "snapdragon870",
                    "--models",
                    "squeezenet,googlenet",
                    "--no-ct",
                ]
            )
            == 0
        )

    def test_plan_empty_models(self, capsys):
        assert main(["plan", "--models", " "]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExtensions:
    def test_plan_with_gantt_and_energy(self, capsys):
        code = main(
            ["plan", "--models", "vit,resnet50", "--gantt", "--energy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "mJ" in out

    def test_plan_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(["plan", "--models", "vit", "--trace", str(trace)])
        assert code == 0
        import json

        assert json.loads(trace.read_text())["traceEvents"]

    def test_stream_command(self, capsys):
        code = main(
            [
                "stream",
                "--models",
                "squeezenet,squeezenet,resnet50",
                "--window",
                "2",
                "--interval",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "windows" in out
        assert "mean request latency" in out

    def test_stream_coalesce(self, capsys):
        code = main(
            [
                "stream",
                "--models",
                "mobilenetv2,mobilenetv2,mobilenetv2",
                "--coalesce",
            ]
        )
        assert code == 0

    def test_stream_empty_models(self, capsys):
        assert main(["stream", "--models", " "]) == 2

    def test_export_model(self, capsys, tmp_path):
        path = tmp_path / "model.json"
        assert main(["export-model", "bert", str(path)]) == 0
        from repro.models.serialization import load_model

        assert load_model(str(path)).name == "bert"

    def test_export_unknown_model(self, capsys, tmp_path):
        path = tmp_path / "model.json"
        assert main(["export-model", "nope", str(path)]) == 2

    def test_stats_poisson_open_loop_json(self, capsys):
        code = main(
            [
                "stats",
                "--models",
                "squeezenet,mobilenetv2,squeezenet",
                "--arrivals",
                "poisson",
                "--interval-ms",
                "5",
                "--arrival-seed",
                "2",
                "--deadline-ms",
                "60",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.stats.v1"
        queueing = doc["queueing"]
        assert queueing["arrival_process"] == "poisson"
        assert len(queueing["queueing_delay_ms"]) == 3
        assert all(
            d is None or d >= 0.0 for d in queueing["queueing_delay_ms"]
        )
        assert queueing["deadline_drops"] == len(
            queueing["dropped_requests"]
        )
        assert (
            queueing["completed_requests"] + queueing["deadline_drops"] == 3
        )
        assert queueing["mean_queueing_delay_ms"] >= 0.0

    def test_stats_closed_loop_default_json(self, capsys):
        code = main(["stats", "--models", "squeezenet,vit", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["queueing"]["arrival_process"] == "closed"
        assert doc["queueing"]["deadline_drops"] == 0
        assert doc["queueing"]["queueing_delay_ms"][0] == pytest.approx(0.0)
        assert doc["latency"]["mean_ms"] > 0.0

    def test_stats_human_output_mentions_queueing(self, capsys):
        code = main(
            [
                "stats",
                "--models",
                "squeezenet,squeezenet",
                "--arrivals",
                "periodic",
                "--interval-ms",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queueing: periodic arrivals" in out

    def test_calibrate_command(self, capsys, tmp_path):
        import json

        targets = tmp_path / "targets.json"
        targets.write_text(
            json.dumps(
                [
                    {
                        "model": "resnet50",
                        "processor": "cpu_big",
                        "latency_ms": 55.0,
                    }
                ]
            )
        )
        assert main(["calibrate", "--targets", str(targets)]) == 0
        out = capsys.readouterr().out
        assert "throughput scale" in out
