"""Cross-module integration tests: the paper's headline claims in miniature."""

import pytest

from repro.baselines.band import execute_band
from repro.baselines.mnn_serial import plan_mnn_serial
from repro.baselines.pipe_it import plan_pipe_it
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.experiments.common import geomean
from repro.hardware.soc import get_soc
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan
from repro.workloads.generator import sample_combinations


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


@pytest.fixture(scope="module")
def sweep(kirin, profiler):
    """A small Fig. 7-style sweep shared by the assertions below."""
    planner = Hetero2PipePlanner(kirin)
    no_ct = Hetero2PipePlanner(kirin, PlannerConfig.no_contention_or_tail())
    rows = []
    for spec in sample_combinations(count=8, seed=123):
        models = spec.models()
        rows.append(
            {
                "mnn": execute_plan(
                    plan_mnn_serial(kirin, models, profiler)
                ).makespan_ms,
                "pipe_it": execute_plan(
                    plan_pipe_it(kirin, models, profiler)
                ).makespan_ms,
                "band": execute_band(kirin, models, profiler).makespan_ms,
                "no_ct": execute_plan(no_ct.plan(models).plan).makespan_ms,
                "h2p": execute_plan(planner.plan(models).plan).makespan_ms,
            }
        )
    return rows


class TestHeadlineClaims:
    def test_h2p_beats_mnn_by_paper_scale(self, sweep):
        # Paper: 4.2x average, up to 8.8x on Kirin 990.
        speedups = [r["mnn"] / r["h2p"] for r in sweep]
        assert geomean(speedups) > 2.0
        assert max(speedups) > 4.0

    def test_h2p_beats_pipe_it(self, sweep):
        # Paper: 2x average, up to 3.7x.
        speedups = [r["pipe_it"] / r["h2p"] for r in sweep]
        assert geomean(speedups) > 2.0

    def test_h2p_competitive_with_band(self, sweep):
        # Paper: ~5 % average gain; Band wins occasionally.
        speedups = [r["band"] / r["h2p"] for r in sweep]
        assert geomean(speedups) > 0.95

    def test_h2p_never_loses_to_its_ablation(self, sweep):
        for row in sweep:
            assert row["h2p"] <= row["no_ct"] * 1.001

    def test_every_scheme_finishes_all_requests(self, kirin, profiler):
        models = sample_combinations(count=1, seed=9)[0].models()
        planner = Hetero2PipePlanner(kirin)
        result = execute_plan(planner.plan(models).plan)
        assert result.num_requests == len(models)
        assert all(f > 0 for f in result.request_finish_ms)


class TestCrossPlatformShape:
    def test_kirin_gains_exceed_snapdragon(self):
        # The NPU is the main lever: Kirin speedups dominate.
        gains = {}
        for soc_name in ("kirin990", "snapdragon870"):
            soc = get_soc(soc_name)
            profiler = SocProfiler(soc)
            planner = Hetero2PipePlanner(soc)
            ratios = []
            for spec in sample_combinations(count=4, seed=77):
                models = spec.models()
                mnn = execute_plan(
                    plan_mnn_serial(soc, models, profiler)
                ).makespan_ms
                h2p = execute_plan(planner.plan(models).plan).makespan_ms
                ratios.append(mnn / h2p)
            gains[soc_name] = geomean(ratios)
        assert gains["kirin990"] > gains["snapdragon870"]

    def test_throughput_and_latency_consistent(self, kirin, profiler):
        planner = Hetero2PipePlanner(kirin)
        models = sample_combinations(count=1, seed=5)[0].models()
        result = execute_plan(planner.plan(models).plan)
        assert result.throughput_per_s == pytest.approx(
            len(models) / (result.makespan_ms / 1e3)
        )


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self, kirin):
        models = sample_combinations(count=1, seed=31)[0].models()
        a = execute_plan(Hetero2PipePlanner(kirin).plan(models).plan)
        b = execute_plan(Hetero2PipePlanner(kirin).plan(models).plan)
        assert a.makespan_ms == b.makespan_ms
        assert [r.start_ms for r in a.records] == [
            r.start_ms for r in b.records
        ]
