"""Processor specifications for heterogeneous mobile SoCs.

A :class:`ProcessorSpec` captures what the latency and contention models
need to know about one schedulable compute unit: its kind (CPU Big
cluster, CPU Small cluster, GPU, NPU), peak FP16 throughput, per-operator
efficiency, cache size, solo memory bandwidth and kernel-launch overhead.

The paper treats the CPU Big and Small clusters each as a single unit
(Appendix A: per-core partitioning causes up to 70 % intra-cluster
slowdown, so whole clusters are the scheduling granularity) and the
GPU/NPU as indivisible accelerators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..models.ir import NPU_SUPPORTED_OPS, Layer, OpType


class ProcessorKind(enum.Enum):
    """The four processor classes the paper schedules onto."""

    CPU_BIG = "cpu_big"
    CPU_SMALL = "cpu_small"
    GPU = "gpu"
    NPU = "npu"


#: Operator-family groupings used for per-processor efficiency factors.
_MATMUL_FAMILY = frozenset(
    {
        OpType.FULLY_CONNECTED,
        OpType.MATMUL,
        OpType.ATTENTION,
        OpType.MASKED_ATTENTION,
        OpType.EMBEDDING,
    }
)
# CONCAT and ADD appear in the IR only as tags on *fused* conv blocks
# (inception, fire, residual), whose compute is conv-dominated, so they
# take the conv efficiency.
_CONV_FAMILY = frozenset(
    {OpType.CONV, OpType.POINTWISE_CONV, OpType.MISH, OpType.CONCAT, OpType.ADD}
)
_DEPTHWISE_FAMILY = frozenset({OpType.DEPTHWISE_CONV})
_LIGHT_FAMILY = frozenset(
    {
        OpType.POOL,
        OpType.RELU,
        OpType.GELU,
        OpType.SOFTMAX,
        OpType.LAYER_NORM,
        OpType.BATCH_NORM,
        OpType.UPSAMPLE,
        OpType.FLATTEN,
    }
)


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of one compute unit.

    Attributes:
        name: Unique identifier within its SoC (e.g. ``"cpu_big"``).
        kind: Processor class.
        peak_gflops: Peak FP16 throughput in GFLOP/s.
        efficiency: Fraction of peak achieved per operator family; keys
            are ``"conv"``, ``"matmul"``, ``"depthwise"``, ``"light"``.
        mem_bandwidth_gbps: Effective solo DRAM bandwidth in GB/s.
        l2_cache_bytes: Last-level cache available to this unit; working
            sets beyond it amplify DRAM traffic (Observation 2).
        launch_overhead_ms: Fixed per-slice kernel-launch / dispatch cost.
        copy_bandwidth_gbps: Bandwidth for inter-stage tensor copies on the
            unified memory (the ``T^c`` term of Eq. 2).
        supports_all_ops: False for the NPU, whose operator set is
            :data:`~repro.models.ir.NPU_SUPPORTED_OPS`.
        dedicated_memory_path: True for the NPU: its traffic largely
            bypasses the shared bus, so it neither suffers from nor causes
            much contention (Sec. III: CPU-NPU slowdown ~3-5 %).
    """

    name: str
    kind: ProcessorKind
    peak_gflops: float
    efficiency: Mapping[str, float]
    mem_bandwidth_gbps: float
    l2_cache_bytes: float
    launch_overhead_ms: float
    copy_bandwidth_gbps: float
    supports_all_ops: bool = True
    dedicated_memory_path: bool = False

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0:
            raise ValueError(f"{self.name}: peak_gflops must be positive")
        if self.mem_bandwidth_gbps <= 0 or self.copy_bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: bandwidths must be positive")
        for key in ("conv", "matmul", "depthwise", "light"):
            if key not in self.efficiency:
                raise ValueError(f"{self.name}: missing efficiency[{key!r}]")
            if not 0 < self.efficiency[key] <= 1:
                raise ValueError(
                    f"{self.name}: efficiency[{key!r}] must be in (0, 1]"
                )

    def op_family(self, op: OpType) -> str:
        """Efficiency-family key for an operator."""
        if op in _MATMUL_FAMILY:
            return "matmul"
        if op in _CONV_FAMILY:
            return "conv"
        if op in _DEPTHWISE_FAMILY:
            return "depthwise"
        return "light"

    def effective_gflops(self, op: OpType) -> float:
        """Achievable GFLOP/s on this unit for the given operator type."""
        return self.peak_gflops * self.efficiency[self.op_family(op)]

    def supports(self, layer: Layer) -> bool:
        """Whether this unit can execute the layer at all."""
        if self.supports_all_ops:
            return True
        return layer.op in NPU_SUPPORTED_OPS

    def supports_model_slice(self, layers) -> bool:
        """Whether every layer of a slice is executable on this unit."""
        return all(self.supports(layer) for layer in layers)


def make_cpu_big(
    name: str = "cpu_big",
    peak_gflops: float = 300.0,
    mem_bandwidth_gbps: float = 14.0,
    l2_cache_bytes: float = 1.0e6,
) -> ProcessorSpec:
    """A performance-cluster CPU: strong NEON conv, weak huge-MatMul."""
    return ProcessorSpec(
        name=name,
        kind=ProcessorKind.CPU_BIG,
        peak_gflops=peak_gflops,
        efficiency={"conv": 0.50, "matmul": 0.25, "depthwise": 0.30, "light": 0.25},
        mem_bandwidth_gbps=mem_bandwidth_gbps,
        l2_cache_bytes=l2_cache_bytes,
        launch_overhead_ms=0.05,
        copy_bandwidth_gbps=10.0,
    )


def make_cpu_small(
    name: str = "cpu_small",
    peak_gflops: float = 55.0,
    mem_bandwidth_gbps: float = 6.0,
    l2_cache_bytes: float = 0.25e6,
) -> ProcessorSpec:
    """An efficiency-cluster CPU: ~5x slower than the Big cluster."""
    return ProcessorSpec(
        name=name,
        kind=ProcessorKind.CPU_SMALL,
        peak_gflops=peak_gflops,
        efficiency={"conv": 0.45, "matmul": 0.15, "depthwise": 0.30, "light": 0.25},
        mem_bandwidth_gbps=mem_bandwidth_gbps,
        l2_cache_bytes=l2_cache_bytes,
        launch_overhead_ms=0.05,
        copy_bandwidth_gbps=6.0,
    )


def make_gpu(
    name: str = "gpu",
    peak_gflops: float = 600.0,
    mem_bandwidth_gbps: float = 16.0,
    l2_cache_bytes: float = 2.0e6,
) -> ProcessorSpec:
    """An embedded OpenCL GPU: on par with the Big CPU cluster overall.

    Peak throughput is higher than the CPU's but OpenCL efficiency on
    Mali/Adreno is low and per-kernel launch cost is significant, which
    is why Fig. 1 shows Big CPU ~ GPU.
    """
    return ProcessorSpec(
        name=name,
        kind=ProcessorKind.GPU,
        peak_gflops=peak_gflops,
        efficiency={"conv": 0.20, "matmul": 0.12, "depthwise": 0.05, "light": 0.12},
        mem_bandwidth_gbps=mem_bandwidth_gbps,
        l2_cache_bytes=l2_cache_bytes,
        launch_overhead_ms=0.40,
        copy_bandwidth_gbps=8.0,
    )


def make_npu(
    name: str = "npu",
    peak_gflops: float = 1300.0,
    mem_bandwidth_gbps: float = 30.0,
    l2_cache_bytes: float = 8.0e6,
) -> ProcessorSpec:
    """A dedicated NPU: far faster, limited op set, own memory path."""
    return ProcessorSpec(
        name=name,
        kind=ProcessorKind.NPU,
        peak_gflops=peak_gflops,
        efficiency={"conv": 0.60, "matmul": 0.55, "depthwise": 0.35, "light": 0.30},
        mem_bandwidth_gbps=mem_bandwidth_gbps,
        l2_cache_bytes=l2_cache_bytes,
        launch_overhead_ms=0.80,
        copy_bandwidth_gbps=6.0,
        supports_all_ops=False,
        dedicated_memory_path=True,
    )
