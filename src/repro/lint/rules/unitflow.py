"""H2P110/H2P111 — unit-dimension dataflow over core/hardware/runtime.

The paper's latency arithmetic is dimensional: Eq. 1 slowdown factors
are *ratios* multiplied into *milliseconds*, memory budgets are bytes,
throughputs are per-second rates. H2P104 enforces the naming side of
that contract (quantity functions carry a suffix); these rules enforce
the *algebra*: a unit inferred from the ``_ms``/``_mb`` suffix
convention is propagated through assignments, arithmetic, loops and
branches by the :mod:`repro.lint.flow` abstract interpretation, and

* **H2P110** flags addition, subtraction, augmented assignment and
  ordering/equality comparison of two values with definite,
  contradictory units (``latency_ms + size_mb``; ``budget_mb <
  used_bytes``; ``total_ms += elapsed_s``) — including through locals:
  ``t = makespan_ms`` then ``t + size_mb`` is caught;
* **H2P111** flags a ``return`` whose inferred unit contradicts the
  unit the function's own name declares (``def makespan_ms(...):
  return total_s``).

Only definite-vs-definite clashes report, so the rules are quiet on
anything the suffix convention does not cover. Scope: the three
packages whose boundary DESIGN.md names as the historical unit-mixing
hazard — ``repro.core``, ``repro.hardware``, ``repro.runtime``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..engine import Finding, LintContext, LintRule, register_rule
from ..flow.analysis import UnitAnalysis
from ..flow.lattice import Unit, dimension, is_definite, suffix_unit

#: Packages (second dotted component) the dataflow rules sweep.
UNIT_FLOW_PACKAGES = ("core", "hardware", "runtime")


def _in_scope(ctx: LintContext) -> bool:
    parts = ctx.package_parts
    return (
        len(parts) >= 2
        and parts[0] == "repro"
        and parts[1] in UNIT_FLOW_PACKAGES
    )


def _function_params(fn: ast.AST) -> List[str]:
    args = fn.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _analyses(tree: ast.Module) -> Iterator[UnitAnalysis]:
    """One UnitAnalysis per scope: the module body, then each function."""
    yield UnitAnalysis().analyze(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield UnitAnalysis().analyze(node.body, _function_params(node))


@register_rule
class UnitMismatchRule(LintRule):
    code = "H2P110"
    name = "no-mixed-unit-arithmetic"
    rationale = (
        "Eq. 1 multiplies slowdown ratios into milliseconds; adding or "
        "comparing ms to bytes/MB/s silently corrupts every downstream "
        "latency figure — units are propagated by dataflow, not just names"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        for analysis in _analyses(tree):
            for violation in analysis.violations:
                yield self.finding(
                    ctx,
                    violation.node,
                    f"mixed-unit operation: {violation.left} "
                    f"{violation.operation} {violation.right}; convert to "
                    "one unit explicitly before combining",
                )


def _contradicts(declared: Unit, returned: Unit) -> bool:
    if not is_definite(declared) or not is_definite(returned):
        return False
    if declared is returned:
        return False
    # ratio vs count both read as dimensionless; tolerate the mix.
    return not (
        dimension(declared) == "dimensionless"
        and dimension(returned) == "dimensionless"
    )


@register_rule
class ReturnUnitRule(LintRule):
    code = "H2P111"
    name = "return-matches-declared-unit-suffix"
    rationale = (
        "a function named *_ms is a promise to every caller; returning a "
        "value the dataflow infers as seconds or bytes breaks the one "
        "unit system the codebase has"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared = suffix_unit(node.name)
            if not is_definite(declared):
                continue
            analysis = UnitAnalysis().analyze(
                node.body, _function_params(node)
            )
            for return_node, returned in analysis.returns:
                if _contradicts(declared, returned):
                    yield self.finding(
                        ctx,
                        return_node,
                        f"function {node.name!r} declares {declared} by its "
                        f"suffix but this return is inferred as {returned}",
                    )
