"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the aggregate side of observability: where spans answer
"how long did this call take", the registry answers "how much work did
the planner do overall" — DP cells evaluated, LAP assignments applied,
boundary layers stolen, windows violating the 2-High rule.  Metrics
count *work performed*, including work on candidate plans the planner
later discards; the provenance log (``repro.obs.events``) is the record
of what was committed.

Everything is plain stdlib; snapshots flush to JSON or aligned text.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets (upper bounds); the last bucket is +inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative add {amount}")
        self.value += amount


class Gauge:
    """Last-set value (e.g. the most recent makespan)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds of the finite buckets; one overflow
    bucket (+inf) is always appended.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "low", "high")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r}: need at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r}: duplicate bucket bounds")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf

    def observe(self, value: float) -> None:
        # First bound >= value; past the last bound -> overflow bucket.
        idx = bisect.bisect_left(self.buckets, value)
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        self.low = min(self.low, value)
        self.high = max(self.high, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.low if self.count else None,
            "max": self.high if self.count else None,
            "buckets": {
                (f"le_{bound:g}" if i < len(self.buckets) else "inf"): n
                for i, (bound, n) in enumerate(
                    zip(self.buckets + (math.inf,), self.counts)
                )
            },
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created lazily on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return h

    # -- flush -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of every metric (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Aligned terminal dump, one metric per line."""
        lines: List[str] = []
        snap = self.snapshot()
        counters = snap["counters"]
        gauges = snap["gauges"]
        if counters:
            lines.append("counters:")
            width = max(len(n) for n in counters)
            for name, value in counters.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}s} {value:g}")
        if gauges:
            lines.append("gauges:")
            width = max(len(n) for n in gauges)
            for name, value in gauges.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}s} {value:g}")
        if self._histograms:
            lines.append("histograms:")
            for name, hist in sorted(self._histograms.items()):
                if hist.count:
                    lines.append(
                        f"  {name}: n={hist.count} mean={hist.mean:.3g} "
                        f"min={hist.low:.3g} max={hist.high:.3g}"
                    )
                else:
                    lines.append(f"  {name}: n=0")
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
