"""H2P105 — the ``INFEASIBLE`` sentinel must stay out of arithmetic.

:data:`repro.profiling.INFEASIBLE` is ``float('inf')``: the profiler
returns it for slices containing NPU-unsupported operators (the
fallback rule), and the DP treats it as "prune this candidate".  It is
safe under ``min``/``max``/ordering, and ``==`` detection is exact —
but the moment it enters ``+``/``-``/``*``/``/`` the infinity
propagates (or worse, ``inf - inf`` births a NaN that compares false
with everything and silently corrupts a DP table).  This rule flags
binary/augmented/unary arithmetic whose operand is the sentinel name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, LintRule, register_rule

_SENTINEL = "INFEASIBLE"

_ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


def _is_sentinel(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == _SENTINEL:
        return True
    if isinstance(node, ast.Attribute) and node.attr == _SENTINEL:
        return True
    return False


@register_rule
class InfeasibleArithmeticRule(LintRule):
    code = "H2P105"
    name = "no-infeasible-sentinel-arithmetic"
    rationale = (
        "INFEASIBLE is float('inf'); arithmetic propagates it (inf-inf "
        "is NaN) and corrupts DP tables — compare/prune, never compute"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                if _is_sentinel(node.left) or _is_sentinel(node.right):
                    yield self.finding(
                        ctx,
                        node,
                        "INFEASIBLE used as an arithmetic operand; the "
                        "sentinel may only be compared or min/max-pruned",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ARITH_OPS
            ):
                if _is_sentinel(node.value) or _is_sentinel(node.target):
                    yield self.finding(
                        ctx,
                        node,
                        "augmented assignment with INFEASIBLE; the sentinel "
                        "may only be compared or min/max-pruned",
                    )
            elif isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.USub
            ):
                if _is_sentinel(node.operand):
                    yield self.finding(
                        ctx,
                        node,
                        "negating INFEASIBLE produces -inf and breaks "
                        "min-max pruning",
                    )
