"""Streaming-request queueing analysis (Fig. 2a).

The paper motivates heterogeneous execution by showing queueing delay
accumulating under serial CPU-Big execution: requests arrive faster than
the single processor drains them, so waiting time grows with position in
the stream.  Bringing in heterogeneous processors removes the backlog.

This module runs both configurations on the shared simulator and
reports per-request queueing delay (start time minus arrival time of the
request's first slice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines.mnn_serial import plan_mnn_serial
from ..core.planner import Hetero2PipePlanner
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler
from .executor import ExecutionResult, execute_plan


@dataclass(frozen=True)
class QueueingReport:
    """Per-request delays of one execution configuration."""

    label: str
    arrival_ms: List[float]
    start_ms: List[float]
    finish_ms: List[float]

    @property
    def queueing_delay_ms(self) -> List[float]:
        """Wait between arrival and first execution, per request."""
        return [s - a for s, a in zip(self.start_ms, self.arrival_ms)]

    @property
    def completion_latency_ms(self) -> List[float]:
        return [f - a for f, a in zip(self.finish_ms, self.arrival_ms)]

    @property
    def mean_queueing_delay_ms(self) -> float:
        delays = self.queueing_delay_ms
        return sum(delays) / len(delays) if delays else 0.0


def _first_starts(result: ExecutionResult) -> List[float]:
    starts: List[float] = []
    for i in range(result.num_requests):
        start = result.first_start_ms(i)
        if start is None:
            raise ValueError(f"request {i} never started: no queueing delay")
        starts.append(start)
    return starts


def serial_queueing(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    arrivals: Sequence[float],
    profiler: Optional[SocProfiler] = None,
) -> QueueingReport:
    """Queueing behaviour of serial CPU-Big execution."""
    plan = plan_mnn_serial(soc, models, profiler or SocProfiler(soc))
    result = execute_plan(plan, arrivals=list(arrivals))
    return QueueingReport(
        label="serial_cpu_big",
        arrival_ms=list(arrivals),
        start_ms=_first_starts(result),
        finish_ms=list(result.request_finish_ms),
    )


def heterogeneous_queueing(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    arrivals: Sequence[float],
    planner: Optional[Hetero2PipePlanner] = None,
) -> QueueingReport:
    """Queueing behaviour with the full heterogeneous pipeline."""
    planner = planner or Hetero2PipePlanner(soc)
    report = planner.plan(list(models))
    # Mitigation may permute requests: plan.assignments[pos] serves the
    # original request plan.order[pos], so the simulator must see the
    # arrivals in execution order...
    ordered_arrivals = [arrivals[i] for i in report.plan.order]
    result = execute_plan(report.plan, arrivals=ordered_arrivals)
    # ...and the report must map the simulator's execution-position
    # outputs *back* to original request indices, or a reordered plan
    # pairs request A's arrival with request B's start (and positional
    # comparisons against serial_queueing silently cross-match).
    starts = _first_starts(result)
    start_ms = [0.0] * result.num_requests
    finish_ms = [0.0] * result.num_requests
    for exec_pos, original in enumerate(report.plan.order):
        start_ms[original] = starts[exec_pos]
        finish_ms[original] = result.request_finish_ms[exec_pos]
    return QueueingReport(
        label="hetero2pipe",
        arrival_ms=list(arrivals),
        start_ms=start_ms,
        finish_ms=finish_ms,
    )
