"""Unit tests for the FLOP / byte calculators."""

import pytest

from repro.models import flops as F


class TestTensorBytes:
    def test_fp16_element_size(self):
        assert F.tensor_bytes(10) == 20.0

    def test_multi_dim(self):
        assert F.tensor_bytes(2, 3, 4) == 2 * 3 * 4 * 2.0

    def test_scalar(self):
        assert F.tensor_bytes() == 2.0

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            F.tensor_bytes(-1)


class TestConv:
    def test_conv2d_flops_counts_two_per_mac(self):
        # 1 MAC per output element with 1x1 kernel and 1 channel.
        assert F.conv2d_flops(1, 1, 1, 4, 4) == 2.0 * 16

    def test_conv2d_flops_grouped(self):
        full = F.conv2d_flops(8, 8, 3, 10, 10, groups=1)
        grouped = F.conv2d_flops(8, 8, 3, 10, 10, groups=8)
        assert grouped == full / 8

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            F.conv2d_flops(4, 4, 3, 8, 8, groups=0)

    def test_weight_bytes_include_bias(self):
        # 3x3, 2->4 channels: 72 weights + 4 bias, fp16.
        assert F.conv2d_weight_bytes(2, 4, 3) == (72 + 4) * 2.0

    def test_depthwise_flops(self):
        assert F.depthwise_conv_flops(16, 3, 8, 8) == 2.0 * 16 * 9 * 64

    def test_out_dim_formula(self):
        assert F.conv_out_dim(224, 7, 2, 3) == 112
        assert F.conv_out_dim(224, 3, 1, 1) == 224

    def test_out_dim_invalid_stride(self):
        with pytest.raises(ValueError):
            F.conv_out_dim(10, 3, 0, 1)


class TestLinearAndAttention:
    def test_linear_flops(self):
        assert F.linear_flops(100, 10) == 2000.0

    def test_linear_flops_with_tokens(self):
        assert F.linear_flops(100, 10, tokens=4) == 8000.0

    def test_linear_weight_bytes(self):
        assert F.linear_weight_bytes(10, 5) == (50 + 5) * 2.0

    def test_attention_flops_scale_quadratically_in_seq(self):
        short = F.attention_flops(64, 256, 4)
        long = F.attention_flops(128, 256, 4)
        # Projections double; score term quadruples -> more than 2x.
        assert long > 2 * short

    def test_attention_invalid_heads(self):
        with pytest.raises(ValueError):
            F.attention_flops(64, 256, 0)

    def test_ffn_flops(self):
        assert F.ffn_flops(2, 4, 8) == 2.0 * 2 * (32 + 32)

    def test_layer_norm_flops(self):
        assert F.layer_norm_flops(10, 20) == 5.0 * 200

    def test_softmax_flops(self):
        assert F.softmax_flops(10, 10) == 300.0


class TestElementwise:
    def test_elementwise_flops(self):
        assert F.elementwise_flops(3, 4) == 12.0

    def test_pool_flops(self):
        assert F.pool_flops(8, 4, 4, 2) == 8 * 16 * 4
