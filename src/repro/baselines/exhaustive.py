"""Exhaustive vertical-plan search (Fig. 8a upper bound).

Given the fixed horizontal DP partitions, the vertical decision space is
explored exhaustively over a coarse grid — every request independently
chooses between its DP partition and each feasible single-processor
placement, giving ``(K + 1)^|M|`` candidate plans — and the winner is
polished to a local optimum with the same fine-grained boundary-move
descent and tail re-allocation Hetero2Pipe uses.  The combination
dominates the planner's own search space, so its result is the
near-optimality reference the paper measures against ("our scheme ranks
very close to the solution found by exhaustive search, only 4 % away").
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..core.partition import partition_model
from ..core.plan import PipelinePlan, StageAssignment
from ..core.stealing import optimize_tail, refine_globally, single_processor_assignment
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler
from ..runtime.schedule import async_makespan_ms

#: Refuse instances whose coarse grid would exceed this many plans.
MAX_CANDIDATES = 200_000


def candidate_assignments(
    profile, processors
) -> List[StageAssignment]:
    """Per-request options: DP partition + feasible single stages."""
    dp = partition_model(profile, processors)
    options = [StageAssignment(profile=profile, slices=list(dp.slices))]
    base = options[0]
    seen = {tuple(base.slices)}
    for stage in range(len(processors)):
        single = single_processor_assignment(base, stage, processors)
        if single is not None and tuple(single.slices) not in seen:
            seen.add(tuple(single.slices))
            options.append(single)
    return options


def exhaustive_plan(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
    refine: bool = True,
) -> Tuple[PipelinePlan, float]:
    """Search the coarse grid exhaustively and polish the winner.

    Returns:
        ``(best_plan, makespan_ms)`` under the contention-aware
        synchronized schedule.

    Raises:
        ValueError: for empty input or an instance above
            :data:`MAX_CANDIDATES` candidates.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    processors = tuple(soc.processors)
    per_request = [
        candidate_assignments(profiler.profile(m), processors) for m in models
    ]
    total = 1
    for options in per_request:
        total *= len(options)
    if total > MAX_CANDIDATES:
        raise ValueError(
            f"instance too large for exhaustive search: {total} candidates "
            f"(limit {MAX_CANDIDATES})"
        )

    best_plan: Optional[PipelinePlan] = None
    best_cost = float("inf")
    for combo in itertools.product(*per_request):
        plan = PipelinePlan(
            soc=soc,
            processors=processors,
            assignments=[a.copy() for a in combo],
        )
        cost = async_makespan_ms(plan)
        if cost < best_cost:
            best_cost = cost
            best_plan = plan

    assert best_plan is not None
    if refine:
        refine_globally(best_plan)
        optimize_tail(best_plan)
        best_cost = async_makespan_ms(best_plan)
    return best_plan, best_cost
