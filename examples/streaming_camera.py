#!/usr/bin/env python3
"""Streaming inference: arrivals, queueing delay, lightweight batching.

Simulates a camera pipeline pushing frames through classification
(MobileNetV2) while heavier analytics (ResNet50, InceptionV4) run at a
lower rate — the Fig. 2(a) queueing scenario plus the Appendix D
batching remedy for lightweight models.

Run:
    python examples/streaming_camera.py
"""

from repro import Hetero2PipePlanner, get_model, get_soc
from repro.profiling import SocProfiler
from repro.runtime.queueing import heterogeneous_queueing, serial_queueing
from repro.workloads import (
    arrival_times_ms,
    batch_latency_model,
    batch_size_to_match,
)

#: 12 frames: light classification every frame, analytics every 4th.
STREAM = (
    "mobilenetv2", "mobilenetv2", "mobilenetv2", "resnet50",
    "mobilenetv2", "mobilenetv2", "mobilenetv2", "inceptionv4",
    "mobilenetv2", "mobilenetv2", "mobilenetv2", "resnet50",
)
FRAME_INTERVAL_MS = 40.0  # 25 FPS camera


def main() -> None:
    soc = get_soc("kirin990")
    models = [get_model(name) for name in STREAM]
    arrivals = arrival_times_ms(len(models), FRAME_INTERVAL_MS)

    serial = serial_queueing(soc, models, arrivals)
    hetero = heterogeneous_queueing(soc, models, arrivals)

    print(f"camera stream at {1000 / FRAME_INTERVAL_MS:.0f} FPS on {soc.name}\n")
    print(f"  {'frame':>5s} {'arrival':>8s} {'serial wait':>12s} "
          f"{'pipeline wait':>14s}")
    for i in range(len(models)):
        print(f"  {i:5d} {arrivals[i]:8.0f} "
              f"{serial.queueing_delay_ms[i]:12.1f} "
              f"{hetero.queueing_delay_ms[i]:14.1f}")
    print(f"\n  mean queueing delay: serial {serial.mean_queueing_delay_ms:.1f} ms"
          f" vs pipeline {hetero.mean_queueing_delay_ms:.1f} ms")

    # Batching (Appendix D): size MobileNetV2 batches so one batch fills
    # a heavyweight-sized pipeline stage instead of wasting a slot.
    profiler = SocProfiler(soc)
    light = profiler.profile(get_model("mobilenetv2"))
    heavy = profiler.profile(get_model("inceptionv4"))

    print("\nlightweight batching against an InceptionV4-sized stage:")
    for proc in soc.processors:
        try:
            target = heavy.whole_model_ms(proc)
            batch = batch_size_to_match(light, proc, target)
            affine = batch_latency_model(light, proc)
        except ValueError:
            continue
        print(f"  {proc.name:10s} target={target:7.1f} ms -> batch {batch:2d} "
              f"({affine.latency_ms(batch):7.1f} ms, "
              f"{affine.per_sample_ms(batch):5.2f} ms/frame)")


if __name__ == "__main__":
    main()
