"""The unit lattice: physical dimensions carried by suffix convention.

The codebase's only unit system is the name suffix (``makespan_ms``,
``total_mj``, ``size_mb``, ``throughput_per_s`` — see rule H2P104 and
DESIGN.md). This module turns that convention into an abstract domain
the dataflow analysis can compute over:

* :class:`Unit` — one element per recognized unit, plus ``BOTTOM``
  (no information yet: literals, fresh values) and ``TOP`` (conflicting
  or unknowable information). ``BOTTOM <= unit <= TOP``.
* :func:`suffix_unit` — longest-suffix name inference (``_per_s``
  before ``_s``, ``_mhz`` before ``_hz``).
* transfer rules for arithmetic: addition/subtraction/comparison demand
  the same unit (the Eq. 1 bug class: slowdown *ratios* are multiplied
  into milliseconds, never added to them); multiplication by a ratio or
  count preserves the unit; dividing like by like yields a ratio.

The design is deliberately conservative: a violation is only ever
reported when *both* operands carry a definite, contradictory unit —
``TOP`` and ``BOTTOM`` never flag, so imprecision costs recall, not
false positives.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple


class Unit(enum.Enum):
    """One element of the unit lattice (value is the display name)."""

    BOTTOM = "?"  # no information (literals, unbound names)
    MS = "ms"
    US = "us"
    NS = "ns"
    S = "s"
    MJ = "mJ"
    J = "J"
    MW = "mW"
    W = "W"
    HZ = "Hz"
    MHZ = "MHz"
    GHZ = "GHz"
    BYTES = "bytes"
    MB = "MB"
    GB = "GB"
    PER_S = "per-s"
    RATIO = "ratio"
    COUNT = "count"
    TOP = "unknown"  # conflicting information

    def __str__(self) -> str:
        return self.value


#: Physical dimension of each definite unit; ``ratio`` and ``count``
#: share the dimensionless dimension (adding them is tolerated).
_DIMENSIONS: Dict[Unit, str] = {
    Unit.MS: "time",
    Unit.US: "time",
    Unit.NS: "time",
    Unit.S: "time",
    Unit.MJ: "energy",
    Unit.J: "energy",
    Unit.MW: "power",
    Unit.W: "power",
    Unit.HZ: "frequency",
    Unit.MHZ: "frequency",
    Unit.GHZ: "frequency",
    Unit.BYTES: "data",
    Unit.MB: "data",
    Unit.GB: "data",
    Unit.PER_S: "rate",
    Unit.RATIO: "dimensionless",
    Unit.COUNT: "dimensionless",
}

#: Name suffix -> unit, matched longest-first so ``_per_s`` wins over
#: ``_s`` and ``_mhz`` over ``_hz``. Mirrors H2P104's suffix list.
_SUFFIX_UNITS: Tuple[Tuple[str, Unit], ...] = tuple(
    sorted(
        [
            ("_ms", Unit.MS),
            ("_us", Unit.US),
            ("_ns", Unit.NS),
            ("_s", Unit.S),
            ("_mj", Unit.MJ),
            ("_j", Unit.J),
            ("_mw", Unit.MW),
            ("_w", Unit.W),
            ("_hz", Unit.HZ),
            ("_mhz", Unit.MHZ),
            ("_ghz", Unit.GHZ),
            ("_bytes", Unit.BYTES),
            ("_mb", Unit.MB),
            ("_gb", Unit.GB),
            ("_per_s", Unit.PER_S),
            ("_pct", Unit.RATIO),
            ("_frac", Unit.RATIO),
            ("_ratio", Unit.RATIO),
            ("_x", Unit.RATIO),
            ("_factor", Unit.RATIO),
            ("_count", Unit.COUNT),
        ],
        key=lambda pair: len(pair[0]),
        reverse=True,
    )
)


def suffix_unit(name: str) -> Unit:
    """Infer a unit from a name's suffix (``BOTTOM`` when none matches)."""
    lowered = name.lower()
    for suffix, unit in _SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return Unit.BOTTOM


def is_definite(unit: Unit) -> bool:
    """True for real units; ``BOTTOM``/``TOP`` carry no commitment."""
    return unit not in (Unit.BOTTOM, Unit.TOP)


def dimension(unit: Unit) -> Optional[str]:
    """Physical dimension of a definite unit (None for ⊥/⊤)."""
    return _DIMENSIONS.get(unit)


def join(a: Unit, b: Unit) -> Unit:
    """Least upper bound: ⊥ is identity, disagreement goes to ⊤."""
    if a is Unit.BOTTOM:
        return b
    if b is Unit.BOTTOM:
        return a
    if a is b:
        return a
    return Unit.TOP


def additive_compatible(a: Unit, b: Unit) -> bool:
    """May ``a + b`` / ``a - b`` / ``a < b`` proceed without complaint?

    Only a *definite vs definite* mismatch is incompatible; dimensionless
    units (ratio, count) mix freely with each other but not with
    dimensional quantities (``utilization_frac + makespan_ms`` is
    exactly the bug the rule exists for). Same-dimension different-unit
    pairs (``ms`` vs ``s``) are incompatible too — silent scale mixing
    is the historical bug class DESIGN.md warns about.
    """
    if not is_definite(a) or not is_definite(b):
        return True
    if a is b:
        return True
    return dimension(a) == "dimensionless" and dimension(b) == "dimensionless"


def unit_of_add(a: Unit, b: Unit) -> Unit:
    """Result unit of ``a + b`` (callers check compatibility first)."""
    if not additive_compatible(a, b):
        return Unit.TOP
    return join(a, b)


def unit_of_mul(a: Unit, b: Unit) -> Unit:
    """Result unit of ``a * b``.

    Scaling by a dimensionless factor (ratio/count) or an uncommitted
    value preserves the unit — ``latency_ms * slowdown_x`` stays ms,
    which is the paper's Eq. 1 in one line. Two dimensional operands
    produce ⊤ (``ms * ms`` is not a quantity this codebase names).
    """
    if a is Unit.BOTTOM:
        return b
    if b is Unit.BOTTOM:
        return a
    if dimension(a) == "dimensionless":
        return b
    if dimension(b) == "dimensionless":
        return a
    return Unit.TOP


def unit_of_div(a: Unit, b: Unit) -> Unit:
    """Result unit of ``a / b``.

    Like-by-like division yields a ratio (``bubble_ms / makespan_ms``);
    dividing by a dimensionless factor or an uncommitted value keeps
    the numerator's unit; anything else is ⊤.
    """
    if b is Unit.BOTTOM:
        return a
    if is_definite(a) and a is b:
        return Unit.RATIO
    if dimension(b) == "dimensionless":
        return a
    if a is Unit.BOTTOM:
        return Unit.BOTTOM
    return Unit.TOP


__all__ = [
    "Unit",
    "suffix_unit",
    "is_definite",
    "dimension",
    "join",
    "additive_compatible",
    "unit_of_add",
    "unit_of_mul",
    "unit_of_div",
]
