"""Shared memory-subsystem model: DVFS governor and footprint accounting.

Fig. 9 of the paper traces two signals while pipelines execute on the
Kirin 990: the memory-controller frequency (which the vendor governor
raises to its maximum as soon as CPU/GPU co-execution demands bandwidth)
and the available system memory (which pipeline concurrency steadily
consumes).  This module provides both models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .processor import ProcessorKind, ProcessorSpec
from .soc import SocSpec


@dataclass(frozen=True)
class MemoryDemand:
    """Instantaneous bandwidth demand of one active compute unit."""

    processor: ProcessorKind
    bandwidth_gbps: float
    footprint_bytes: float


class MemoryGovernor:
    """A demand-driven DVFS governor for the memory controller.

    The governor picks the lowest frequency in the SoC's table whose
    proportional bandwidth covers the aggregate demand of units on the
    *shared* bus.  NPU traffic rides its dedicated path and does not
    raise the shared-bus frequency — reproducing the Fig. 9 observation
    that single-stage NPU execution leaves the memory frequency low while
    any CPU/GPU involvement pins it to the maximum state.
    """

    def __init__(self, soc: SocSpec):
        self._soc = soc
        self._freqs = soc.memory_freq_mhz
        self._max_freq = self._freqs[-1]

    @property
    def frequencies_mhz(self) -> Tuple[int, ...]:
        return self._freqs

    def bandwidth_at(self, freq_mhz: int) -> float:
        """Shared-bus bandwidth (GB/s) available at a controller frequency."""
        return self._soc.bus_bandwidth_gbps * freq_mhz / self._max_freq

    #: Any shared-bus demand above this pins the controller to maximum —
    #: the vendor-governor behaviour Fig. 9 observes ("once the CPU/GPU
    #: are involved, memory frequency is running at the maximum state").
    LATENCY_BOOST_THRESHOLD_GBPS = 0.3

    def select_frequency(self, demands: Iterable[MemoryDemand]) -> int:
        """Frequency the governor chooses for the given active demands.

        Demand from dedicated-path units (NPU) is excluded: single-stage
        NPU execution leaves the controller at a low state.  Any CPU/GPU
        demand beyond a small threshold triggers the vendor governor's
        latency boost straight to the maximum frequency; tiny residual
        demand is served by the lowest state covering it.
        """
        shared_demand = sum(
            d.bandwidth_gbps
            for d in demands
            if d.processor != ProcessorKind.NPU
        )
        if shared_demand <= 0:
            return self._freqs[0]
        if shared_demand >= self.LATENCY_BOOST_THRESHOLD_GBPS:
            return self._max_freq
        for freq in self._freqs:
            if self.bandwidth_at(freq) >= shared_demand:
                return freq
        return self._max_freq


class MemoryFootprintTracker:
    """Tracks resident bytes of concurrently executing model slices.

    Enforces Constraint (6): the sum of working sets of co-resident
    slices must stay below the physical capacity, otherwise the device
    would page-fault and thrash (MASA's observation, cited by the paper).
    """

    def __init__(self, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity_bytes
        self._resident: dict = {}

    @property
    def capacity_bytes(self) -> float:
        return self._capacity

    @property
    def used_bytes(self) -> float:
        return sum(self._resident.values())

    @property
    def available_bytes(self) -> float:
        return self._capacity - self.used_bytes

    def fits(self, extra_bytes: float) -> bool:
        """Whether an allocation would stay within capacity."""
        return self.used_bytes + extra_bytes <= self._capacity

    def allocate(self, key, nbytes: float) -> None:
        """Register a resident working set.

        Raises:
            MemoryError: if the allocation would exceed capacity — the
                simulated analogue of swapping-induced collapse.
            ValueError: if the key is already resident.
        """
        if key in self._resident:
            raise ValueError(f"allocation key {key!r} already resident")
        if not self.fits(nbytes):
            raise MemoryError(
                f"allocating {nbytes / 1e6:.0f} MB for {key!r} exceeds capacity "
                f"({self.used_bytes / 1e6:.0f}/{self._capacity / 1e6:.0f} MB used)"
            )
        self._resident[key] = nbytes

    def release(self, key) -> None:
        """Release a working set.

        Raises:
            KeyError: if the key is not resident.
        """
        del self._resident[key]


def working_set_bytes(weight_bytes: float, peak_activation_bytes: float) -> float:
    """Resident footprint of a slice: weights plus peak live activations."""
    return weight_bytes + peak_activation_bytes
