"""H2P201 — the import graph must respect the DESIGN.md layering.

The architecture is a DAG, lowest layer first::

    util -> obs -> models -> analysis -> hardware -> profiling
         -> workloads -> core -> runtime -> baselines -> experiments
         -> lint -> cli

``obs`` (the observability recorder) sits just above ``util`` so that
every layer — the planner stages in ``core``, the simulation substrate
in ``runtime`` — can emit spans, metrics and provenance events without
creating an upward edge; ``obs`` itself imports nothing but the
standard library.

A module may import *downward* (or within its own package), never
upward: an upward edge means a substrate package depends on policy
built on top of it — the exact coupling bug this repo shipped with
(``runtime/metrics.py`` importing ``experiments.common`` for
``geomean``) and the one Band-style schedulers repeatedly hit between
coordinator and runtime layers.

Four documented module-level refinements (see docs/STATIC_ANALYSIS.md):

* ``runtime.schedule`` and ``runtime.executor`` rank *below* ``core``:
  they are the pure simulation substrate (Eq. 3 bubbles, Eq. 8 event
  clock) that Algorithms 1-3 use as their cost oracle, while the rest
  of ``runtime`` consumes finished plans;
* ``runtime.queueing`` ranks *above* ``baselines``: it is the serving
  harness that drives the planner and the MNN-serial baseline to
  reproduce Fig. 2(a);
* ``core.objective`` ranks *between* the substrate and the rest of
  ``core``: the memoization layer wraps the cost oracle
  (``runtime.schedule``) and must never grow an edge onto the planner
  policies built on top of it.

Scope: only **module-level** ``import``/``from`` statements are edges —
imports inside functions or ``if TYPE_CHECKING:`` blocks are the
sanctioned escape hatches for optional features and typing cycles, and
create no import-time coupling.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence

from ..engine import Finding, LintContext, LintRule, register_rule

#: Root package the layering applies to.
ROOT_PACKAGE = "repro"

#: Package (or top-level module) -> layer rank; higher may import lower.
LAYERS: Dict[str, int] = {
    "util": 0,
    "obs": 5,
    "models": 10,
    "analysis": 15,
    "hardware": 20,
    "profiling": 30,
    "workloads": 35,
    "core": 40,
    "runtime": 50,
    "baselines": 60,
    "experiments": 70,
    "lint": 80,
    "cli": 90,
}

#: Module-specific rank refinements (full dotted names).
MODULE_OVERRIDES: Dict[str, int] = {
    f"{ROOT_PACKAGE}.runtime.schedule": 36,
    # The event-engine substrate and its arrival processes sit at the
    # same rank as the executor adapter above them: ``core.objective``
    # (38) must be able to probe simulations without an upward edge.
    f"{ROOT_PACKAGE}.runtime.arrivals": 36,
    f"{ROOT_PACKAGE}.runtime.engine": 36,
    f"{ROOT_PACKAGE}.runtime.executor": 36,
    f"{ROOT_PACKAGE}.runtime._legacy_executor": 36,
    f"{ROOT_PACKAGE}.runtime.queueing": 65,
    # The objective-memoization leaf sits directly above the simulation
    # substrate it wraps (runtime.schedule, rank 36) and below the rest
    # of ``core``: it may import the cost oracle, never the planner.
    f"{ROOT_PACKAGE}.core.objective": 38,
    # The self-profiler reads span trees only (obs-internal); pinning it
    # at the obs rank records that runtime.tracing (50) may import it.
    f"{ROOT_PACKAGE}.obs.prof": 5,
    # The bench harness *drives* the planner, streaming layer and
    # executor it times, so it sits above runtime (50) and below the
    # queueing/baseline layers.  ``repro.obs`` must never import it at
    # module level (that would be an upward edge from rank 5).
    f"{ROOT_PACKAGE}.obs.bench": 55,
    # The what-if counterfactual layer *re-runs* the engine it compares
    # against, so like obs.bench it sits above runtime (50); it must be
    # imported explicitly (never re-exported from ``repro.obs``).  Its
    # data-only sibling ``obs.blame`` stays at the obs leaf rank (5):
    # it reads causality rows off a result but never imports runtime.
    f"{ROOT_PACKAGE}.obs.whatif": 55,
}


def rank_of(module: str) -> Optional[int]:
    """Layer rank of a dotted module path (None when outside the map)."""
    parts = module.split(".")
    if not parts or parts[0] != ROOT_PACKAGE:
        return None
    for depth in range(len(parts), 1, -1):
        override = MODULE_OVERRIDES.get(".".join(parts[:depth]))
        if override is not None:
            return override
    if len(parts) == 1:
        return None  # the bare root package
    return LAYERS.get(parts[1])


def _resolve_relative(module_parts: Sequence[str], level: int, target: str) -> str:
    """Resolve ``from ..x import y`` against the importing module."""
    if level <= 0:
        return target
    # level=1 strips the module name (sibling), each extra level one package.
    base = list(module_parts[: len(module_parts) - level])
    if target:
        base.extend(target.split("."))
    return ".".join(base)


@register_rule
class ImportLayeringRule(LintRule):
    code = "H2P201"
    name = "import-layering"
    rationale = (
        "DESIGN.md's package DAG keeps the simulator substrate "
        "independent of the policies built on it; upward imports are "
        "coordinator/runtime coupling bugs"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        src_module = ctx.module
        if not src_module.startswith(f"{ROOT_PACKAGE}.") and src_module != ROOT_PACKAGE:
            return
        src_rank = rank_of(src_module)
        src_parts = ctx.package_parts
        # Package __init__ re-export hubs take the package's own rank.
        if src_rank is None:
            return
        for node in tree.body:  # module level only — see docstring
            targets = []
            if isinstance(node, ast.Import):
                targets = [(node, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(
                    src_parts, node.level, node.module or ""
                )
                # ``from pkg import submodule`` edges point at the
                # submodule when one exists in the layer map.
                targets = []
                for alias in node.names:
                    specific = f"{base}.{alias.name}" if base else alias.name
                    chosen = (
                        specific
                        if rank_of(specific) is not None
                        and rank_of(specific) != rank_of(base)
                        else base
                    )
                    targets.append((node, chosen))
            for stmt, target in targets:
                tgt_rank = rank_of(target)
                if tgt_rank is None:
                    continue
                if _same_package(src_module, target):
                    continue
                if tgt_rank > src_rank:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"upward import: {src_module} (layer {src_rank}) "
                        f"imports {target} (layer {tgt_rank}); the DESIGN.md "
                        "DAG only allows downward edges",
                    )


def _same_package(src_module: str, target: str) -> bool:
    """True when both modules live in the same second-level package."""
    s, t = src_module.split("."), target.split(".")
    return len(s) >= 2 and len(t) >= 2 and s[1] == t[1]
