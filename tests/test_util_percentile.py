"""The one shared percentile implementation and the two published
definitions built on it.

The repo publishes latency percentiles under two deliberately different
definitions: linear interpolation (numpy's default) in the
``hetero2pipe.stats.v1`` / accuracy latency blocks via
``ExecutionResult.latency_percentile_ms``, and classic nearest-rank in
the ``hetero2pipe.bench.v1`` ``p50_ms`` column via
``repro.obs.bench.percentile_ms``.  Both now delegate to
:func:`repro.util.percentile`; these tests pin each caller's published
``--json`` values to the shared function so the definitions cannot
silently swap or drift apart.
"""

import json

import pytest

from repro.cli import main
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import bench
from repro.runtime.executor import execute_plan
from repro.util import PERCENTILE_METHODS, percentile


class TestSharedPercentile:
    def test_linear_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == pytest.approx(10.0)
        assert percentile(values, 100.0) == pytest.approx(40.0)
        assert percentile(values, 50.0) == pytest.approx(25.0)
        assert percentile(values, 25.0) == pytest.approx(17.5)

    def test_nearest_rank_returns_observed_samples(self):
        values = [10.0, 20.0, 30.0, 40.0]
        for q in (0.0, 12.5, 50.0, 77.0, 100.0):
            assert percentile(values, q, "nearest_rank") in values
        assert percentile(values, 50.0, "nearest_rank") == 20.0
        assert percentile(values, 75.0, "nearest_rank") == 30.0
        assert percentile(values, 76.0, "nearest_rank") == 40.0

    def test_input_order_irrelevant(self):
        shuffled = [30.0, 10.0, 40.0, 20.0]
        assert percentile(shuffled, 50.0) == pytest.approx(25.0)
        assert percentile(shuffled, 50.0, "nearest_rank") == 20.0

    def test_single_sample(self):
        for method in PERCENTILE_METHODS:
            assert percentile([7.0], 99.0, method) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError, match="unknown percentile method"):
            percentile([1.0], 50.0, "median-of-medians")


class TestStatsSchemaUsesLinear:
    """``hetero2pipe stats --json`` latency block == linear method."""

    def test_p50_p95_pinned_to_shared_linear(self, capsys):
        models_arg = "squeezenet,mobilenetv2,resnet50"
        assert main(["stats", "--models", models_arg, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)

        soc = get_soc("kirin990")
        models = [get_model(n) for n in models_arg.split(",")]
        plan = Hetero2PipePlanner(soc).plan(models).plan
        result = execute_plan(plan, record=False)
        latencies = [
            result.request_latency_ms(i) for i in range(result.num_requests)
        ]
        for key, q in (("p50_ms", 50.0), ("p95_ms", 95.0), ("p99_ms", 99.0)):
            assert doc["latency"][key] == pytest.approx(
                percentile(latencies, q, "linear")
            )
        # Same inputs under nearest-rank differ (distinct definitions).
        assert doc["latency"]["p95_ms"] != pytest.approx(
            percentile(latencies, 95.0, "nearest_rank")
        )


class TestBenchSchemaUsesNearestRank:
    """``hetero2pipe.bench.v1`` rows == nearest-rank method."""

    def test_percentile_ms_delegates(self):
        samples = [3.0, 1.0, 4.0, 1.5, 9.0]
        for q in (0.0, 33.0, 50.0, 90.0, 100.0):
            assert bench.percentile_ms(samples, q) == percentile(
                samples, q, "nearest_rank"
            )
        with pytest.raises(ValueError, match="at least one sample"):
            bench.percentile_ms([], 50.0)

    def test_bench_row_p50_pinned(self):
        samples = [12.0, 10.0, 11.0, 14.0]
        row = bench.bench_row("scenario.x", "kirin990", samples)
        assert row["p50_ms"] == percentile(samples, 50.0, "nearest_rank")
        assert row["p50_ms"] in samples  # always an observed sample
        # And it is NOT the interpolated median of the same data.
        assert row["p50_ms"] != percentile(samples, 50.0, "linear")
