"""Scenario and sensitivity benchmarks (extension studies)."""

from repro.experiments import ext_scenarios, ext_sensitivity


def test_bench_scenarios(run_once):
    rows = run_once(ext_scenarios.run)
    print("\n" + ext_scenarios.render(rows))

    by_name = {r.scenario: r for r in rows}
    # Every application beats serial execution...
    for row in rows:
        assert row.speedup_vs_mnn > 1.5
    # ...and the NPU-friendly streams see the biggest wins.
    assert by_name["smart_camera"].speedup_vs_mnn > by_name[
        "ar_assistant"
    ].speedup_vs_mnn
    # The achieved makespan respects the theoretical lower bound.
    for row in rows:
        assert row.h2p_ms >= row.lower_bound_ms


def test_bench_sensitivity(run_once):
    points = run_once(
        ext_sensitivity.run,
        coupling_scales=(0.0, 1.0, 2.0),
        num_combinations=5,
    )
    print("\n" + ext_sensitivity.render(points))

    # The headline ordering is robust to the contention-model
    # calibration: H2P dominates MNN and stays competitive with Band at
    # zero, nominal and double coupling strength.
    for point in points:
        assert point.speedup_vs_mnn > 1.5
        assert point.speedup_vs_band > 0.9
