"""CI guard: drift detectors must stay silent on clean runs.

The whole drift subsystem rests on one invariant: the planner's
prediction of a committed plan is the *same* deterministic simulation
the executor runs, so on an unperturbed run every residual is
identically zero and no detector may fire.  A false positive here means
spurious replans in production — cache invalidations, SoC recalibration
and re-planning triggered by noise.

This guard streams a mixed model zoo over every registered SoC through
:class:`~repro.core.online.StreamingPlanner` with accuracy tracking on,
asserts zero drift events / zero replans / sub-microsecond residuals,
and writes the full residual telemetry to a JSONL artifact so a failing
run can be inspected offline.  One clean stream additionally executes
through a directly constructed
:class:`~repro.runtime.engine.DiscreteEventEngine` (not the
``execute_plan`` adapter), pinning the invariant on the engine API
itself.  As a sanity check that the detectors are *able* to fire (a
guard that can never fail guards nothing), one perturbed control run
with a +30% GPU slowdown must detect drift.

Run directly (exit code 0/1, used by the ``drift-guard`` CI job)::

    PYTHONPATH=src python benchmarks/drift_guard.py [telemetry.jsonl]
"""

import sys
from functools import partial

from repro.core.online import StreamingPlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import write_telemetry_jsonl
from repro.runtime.engine import DiscreteEventEngine
from repro.runtime.executor import execute_plan_perturbed, plan_to_chains

SOCS = ("kirin990", "snapdragon778g", "snapdragon870")
MODEL_MIX = ("resnet50", "yolov4", "bert", "squeezenet")
REPEAT = 3
WINDOW_SIZE = 4
RESIDUAL_TOLERANCE_MS = 1e-6
CONTROL_PERTURBATION = {"gpu": 1.3}
DEFAULT_ARTIFACT = "drift-telemetry.jsonl"


def _stream():
    return [get_model(name) for name in MODEL_MIX] * REPEAT


def clean_runs():
    """Clean streams per SoC; returns (failures, all residual reports)."""
    failures = []
    reports = []
    for soc_name in SOCS:
        planner = StreamingPlanner(
            get_soc(soc_name), window_size=WINDOW_SIZE, track_accuracy=True
        )
        result = planner.run(_stream())
        reports.extend(result.residuals)
        worst = max(
            (r.overall().mean_abs_residual_ms for r in result.residuals),
            default=0.0,
        )
        verdict = "ok"
        if result.drift_events:
            verdict = f"{len(result.drift_events)} spurious drift event(s)"
            failures.append(soc_name)
        elif result.replans:
            verdict = f"{result.replans} spurious replan(s)"
            failures.append(soc_name)
        elif worst > RESIDUAL_TOLERANCE_MS:
            verdict = f"residuals up to {worst:.3g} ms on a clean run"
            failures.append(soc_name)
        print(
            f"  {soc_name:15s}: {len(result.residuals)} windows, "
            f"max mean |residual| {worst:.3g} ms — {verdict}"
        )
    return failures, reports


def _engine_execute(plan, arrivals=None, record=True, **kwargs):
    """Execute a plan through an explicitly constructed event engine.

    ``execute_plan`` is itself a thin adapter over the engine; driving
    the engine directly here proves the drift pipeline's zero-residual
    invariant holds on the engine API proper, not just the adapter.
    """
    return DiscreteEventEngine(
        plan.soc,
        plan_to_chains(plan),
        arrivals=arrivals,
        record=record,
        **kwargs,
    ).run()


def engine_clean_run():
    """A clean stream through the raw engine API must also be silent."""
    planner = StreamingPlanner(
        get_soc(SOCS[0]),
        window_size=WINDOW_SIZE,
        track_accuracy=True,
        execute=_engine_execute,
    )
    result = planner.run(_stream())
    worst = max(
        (r.overall().mean_abs_residual_ms for r in result.residuals),
        default=0.0,
    )
    ok = (
        not result.drift_events
        and not result.replans
        and worst <= RESIDUAL_TOLERANCE_MS
    )
    print(
        f"  engine path ({SOCS[0]}): {len(result.residuals)} windows, "
        f"max mean |residual| {worst:.3g} ms — "
        f"{'ok' if ok else 'DETECTOR FIRED'}"
    )
    return ok


def perturbed_control():
    """The detectors must fire under an injected +30% GPU slowdown."""
    planner = StreamingPlanner(
        get_soc(SOCS[0]),
        window_size=WINDOW_SIZE,
        track_accuracy=True,
        execute=partial(
            execute_plan_perturbed, factors=CONTROL_PERTURBATION
        ),
    )
    result = planner.run(_stream())
    print(
        f"  control ({SOCS[0]}, gpu x{CONTROL_PERTURBATION['gpu']}): "
        f"{len(result.drift_events)} drift event(s), "
        f"{result.replans} replan(s)"
    )
    return bool(result.drift_events) and result.replans >= 1


def main(argv):
    artifact = argv[1] if len(argv) > 1 else DEFAULT_ARTIFACT

    print("clean streams (no detector may fire):")
    failures, reports = clean_runs()
    rows = write_telemetry_jsonl(artifact, reports)
    print(f"  telemetry artifact: {artifact} ({rows} rows)")

    print("engine path (raw DiscreteEventEngine, no detector may fire):")
    engine_ok = engine_clean_run()

    print("perturbed control (detectors must fire):")
    control_ok = perturbed_control()

    if failures:
        print(f"FAIL: detector fired on clean run(s): {', '.join(failures)}")
        return 1
    if not engine_ok:
        print("FAIL: detector fired on a clean run via the raw engine API")
        return 1
    if not control_ok:
        print("FAIL: detectors stayed silent under injected +30% GPU drift")
        return 1
    print("OK: detectors silent on clean runs, live under injected drift")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
