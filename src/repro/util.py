"""Dependency-free leaf helpers shared across every layer.

This module sits at the bottom of the DESIGN.md import DAG (layer 0):
anything may import it, it imports only the stdlib.  It exists because
two helpers kept being re-invented upward in the tree — ``geomean``
lived in ``experiments.common`` and was imported *down* by
``runtime.metrics`` (the layering violation H2P201 now bans), and float
tolerance comparisons were open-coded as ``== 0.0`` (H2P102).
"""

from __future__ import annotations

import math
from typing import Sequence

#: Default tolerances for :func:`approx_eq`.  Relative 1e-9 matches
#: ``math.isclose``; the absolute floor makes comparisons against 0.0
#: meaningful for quantities that are sums of roofline ms/mJ terms.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def approx_eq(
    a: float, b: float, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL
) -> bool:
    """Tolerant float equality for scheduling math.

    Use this instead of ``==``/``!=`` on floats (lint rule H2P102):
    slice costs and makespans are accumulated roofline terms, so exact
    equality is machine- and order-dependent.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


#: The two percentile definitions this repo publishes (see
#: :func:`percentile`).  ``linear`` is numpy's default interpolation and
#: backs ``ExecutionResult.latency_percentile_ms`` (the ``stats``/
#: ``accuracy`` latency blocks); ``nearest_rank`` is the classic
#: ceil-rank definition and backs ``repro.obs.bench.percentile_ms``
#: (the ``hetero2pipe.bench.v1`` ``p50_ms`` column).  Both published
#: ``--json`` schemas are pinned by tests against this one function.
PERCENTILE_METHODS = ("linear", "nearest_rank")


def percentile(
    values: Sequence[float], q: float, method: str = "linear"
) -> float:
    """Percentile of a sample, under one of two published definitions.

    Args:
        values: The sample (any order; sorted internally).
        q: Percentile in [0, 100].
        method: ``"linear"`` — linear interpolation over the sorted
            sample (numpy's default): q=0 is the minimum, q=100 the
            maximum, q=50 the median.  ``"nearest_rank"`` — classic
            ``ceil(q/100 * n) - 1`` rank, clamped; the result is always
            an observed sample.

    Raises:
        ValueError: on an empty sample, ``q`` outside [0, 100], or an
            unknown method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if method == "linear":
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    if method == "nearest_rank":
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, int(rank)))]
    raise ValueError(
        f"unknown percentile method {method!r}; options: {PERCENTILE_METHODS}"
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation).

    Raises:
        ValueError: on empty input or non-positive entries.
    """
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
