"""AST rule engine: rule registry, file walking, suppression, findings.

A rule is a subclass of :class:`LintRule` registered via
:func:`register_rule`.  The engine parses each ``.py`` file once, hands
the tree to every enabled rule, and filters the produced findings
through per-line ``# lint: disable=CODE`` pragmas, so a deliberate
exception is visible at the offending line forever.

Suppression syntax (checked against the finding's line range, so a
pragma on the continuation line of a wrapped expression works)::

    t0 = time.time()  # lint: disable=H2P101
    x = a + b         # lint: disable=H2P102,H2P105
    y = c * d         # lint: disable=all

Pragmas are recognized only in real comment tokens (``tokenize``), so
docstrings and string literals showing the syntax never suppress
anything.  A pragma that matches no finding is itself reported
(``H2P109`` — stale suppressions must not accumulate silently), as is
malformed pragma text; neither runs when a ``--rules`` subset is
active, since a pragma for an unselected rule would look unused.
``H2P109`` findings cannot be pragma-suppressed — the fix is deleting
the stale pragma.

Design notes:

* rules are pure functions of ``(tree, context)`` — no global state, so
  the engine can lint fixture trees in tests without touching disk;
* the *relative module path* is computed against a configurable source
  root, which lets tests lint synthetic package layouts under a tmp
  directory (the layering rule needs real-looking module names);
* findings are sorted by ``(path, line, col, code)`` before reporting,
  so CI output and baseline diffs are stable across filesystem walk
  order.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: ``disable=CODE[,CODE...]`` / ``disable=all`` in a comment token.
_PRAGMA = re.compile(r"#\s*lint:\s*disable\s*=\s*([A-Za-z0-9_,\s]*)")

#: Any comment that *mentions* the pragma marker, well-formed or not.
_PRAGMA_MARKER = re.compile(r"#\s*lint\s*:")

#: A valid suppression token: ``all`` or a rule-code shape — starts
#: with a letter, ends with a digit (``H2P101``). Prose words in a
#: pragma ("because", "reasons") are reported malformed instead of
#: silently pretending to suppress.
_CODE_TOKEN = re.compile(r"^(?:all|[A-Za-z][A-Za-z0-9_]*[0-9])$")

#: Code of the engine-level unused/malformed-suppression findings.
UNUSED_SUPPRESSION_CODE = "H2P109"

#: Deterministic report order — the contract baselines diff against.
FINDING_SORT_KEY = "path, line, col, code"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``end_line`` is the last physical line of the offending construct
    (0 means "same as line"); suppression pragmas anywhere in
    ``[line, end_line]`` match, so wrapped expressions can carry the
    pragma on the line that actually overflows.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    end_line: int = 0

    @property
    def last_line(self) -> int:
        return self.end_line if self.end_line >= self.line else self.line

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.last_line,
        }


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may consult besides the tree itself.

    Attributes:
        path: File path as reported in findings.
        module: Dotted module name relative to the source root
            (``repro.runtime.metrics``); empty when the file lies
            outside the root.
        source_lines: Raw source, for pragma checks and diagnostics.
    """

    path: str
    module: str
    source_lines: Sequence[str] = field(default_factory=tuple)

    @property
    def package_parts(self) -> Sequence[str]:
        """Module path split on dots (``("repro", "runtime", "metrics")``)."""
        return tuple(self.module.split(".")) if self.module else ()


#: Compound statements whose ``end_lineno`` spans their whole body; a
#: finding anchored at one must not let a pragma deep inside the body
#: suppress it, so their range collapses to the header line.
_BLOCK_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


class LintRule:
    """Base class for AST rules.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`rationale`
    (shown by ``--list-rules`` and the docs) and implement
    :meth:`check`.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        if isinstance(node, _BLOCK_NODES):
            end_line = line
        else:
            end_line = getattr(node, "end_lineno", None) or line
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            end_line=end_line,
        )


#: code -> rule instance, in registration order.
RULE_REGISTRY: Dict[str, LintRule] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    RULE_REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[LintRule]:
    return list(RULE_REGISTRY.values())


def get_rule(code: str) -> LintRule:
    try:
        return RULE_REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {sorted(RULE_REGISTRY)}"
        ) from None


# ------------------------------------------------------------- suppression


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# lint: disable=...`` comment."""

    line: int
    codes: Tuple[str, ...]
    malformed: Tuple[str, ...] = ()  # invalid tokens (or the whole text)


def collect_pragmas(source: str) -> List[Pragma]:
    """Parse suppression pragmas from *comment tokens only*.

    Tokenizing (rather than regexing raw lines) means pragma examples
    inside docstrings/strings are inert, and a pragma on the physical
    continuation line of a wrapped statement is attributed to that
    line. Codes may be separated by commas and/or spaces; tokens that
    are neither ``all`` nor letters-then-digits are reported malformed.
    On tokenize failure (the file will fail ``ast.parse`` too) no
    pragmas are returned.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _PRAGMA_MARKER.search(comment):
            continue
        line = token.start[0]
        match = _PRAGMA.search(comment)
        if match is None:
            pragmas.append(
                Pragma(line=line, codes=(), malformed=(comment.strip(),))
            )
            continue
        raw_tokens = [t for t in re.split(r"[,\s]+", match.group(1)) if t]
        codes = tuple(t for t in raw_tokens if _CODE_TOKEN.match(t))
        malformed = tuple(t for t in raw_tokens if not _CODE_TOKEN.match(t))
        if not raw_tokens:
            malformed = (comment.strip(),)
        pragmas.append(Pragma(line=line, codes=codes, malformed=malformed))
    return pragmas


def _suppresses(pragma: Pragma, finding: Finding) -> bool:
    if not (finding.line <= pragma.line <= finding.last_line):
        return False
    return "all" in pragma.codes or finding.code in pragma.codes


def apply_suppressions(
    findings: Iterable[Finding],
    source_lines: Sequence[str],
    pragmas: Optional[Sequence[Pragma]] = None,
) -> List[Finding]:
    """Drop findings covered by a matching disable pragma."""
    if pragmas is None:
        pragmas = collect_pragmas("\n".join(source_lines) + "\n")
    kept: List[Finding] = []
    for f in findings:
        if f.code == UNUSED_SUPPRESSION_CODE:
            kept.append(f)  # never self-suppressible
            continue
        if any(_suppresses(p, f) for p in pragmas):
            continue
        kept.append(f)
    return kept


def unused_suppression_findings(
    findings: Sequence[Finding],
    pragmas: Sequence[Pragma],
    path: str,
) -> List[Finding]:
    """H2P109 findings for pragmas that match nothing (or parse badly).

    ``findings`` must be the *pre-suppression* list: a pragma is used
    iff some finding it would suppress exists.
    """
    produced: List[Finding] = []
    for pragma in pragmas:
        unused: List[str] = []
        for code in pragma.codes:
            if code == "all":
                hit = any(
                    f.line <= pragma.line <= f.last_line for f in findings
                )
            else:
                hit = any(
                    f.code == code and f.line <= pragma.line <= f.last_line
                    for f in findings
                )
            if not hit:
                unused.append(code)
        if unused:
            produced.append(
                Finding(
                    code=UNUSED_SUPPRESSION_CODE,
                    message=(
                        "unused suppression "
                        f"({', '.join(sorted(unused))}): no matching finding "
                        "on this line — delete the stale pragma"
                    ),
                    path=path,
                    line=pragma.line,
                )
            )
        if pragma.malformed:
            produced.append(
                Finding(
                    code=UNUSED_SUPPRESSION_CODE,
                    message=(
                        "malformed lint pragma "
                        f"({', '.join(pragma.malformed)}): expected "
                        "'# lint: disable=CODE[,CODE...]' or "
                        "'# lint: disable=all'"
                    ),
                    path=path,
                    line=pragma.line,
                )
            )
    return produced


@register_rule
class UnusedSuppressionRule(LintRule):
    """Catalogue entry for the engine-level H2P109 check.

    The check itself runs in :func:`lint_source` (it needs the other
    rules' pre-suppression findings, which a per-rule ``check`` never
    sees); this registration makes the code visible to
    ``--list-rules``, the SARIF rule table and the docs.
    """

    code = UNUSED_SUPPRESSION_CODE
    name = "no-unused-suppressions"
    rationale = (
        "a '# lint: disable' pragma that matches no finding is a stale "
        "exception nobody is using; it hides the next real finding on "
        "that line (engine-level check; active on full-rule-set runs)"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        return iter(())  # driven by the engine, not the AST walk


# ------------------------------------------------------------------ driving


def module_name_for(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` under ``src_root`` ('' if outside).

    ``src_root/repro/runtime/metrics.py`` -> ``repro.runtime.metrics``;
    package ``__init__.py`` files map to the package itself.
    """
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return ""
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def lint_source(
    source: str,
    path: str,
    module: str,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory source string (the test-friendly core)."""
    full_rule_set = rules is None
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                code="H2P000",
                message=f"syntax error: {error.msg}",
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
            )
        ]
    lines = source.splitlines()
    ctx = LintContext(path=path, module=module, source_lines=lines)
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(tree, ctx))
    pragmas = collect_pragmas(source)
    if full_rule_set:
        # Unused-pragma detection needs every rule's findings; with a
        # --rules subset, a pragma for an unselected rule would look
        # unused, so the check only runs on full-rule-set passes.
        findings.extend(
            unused_suppression_findings(findings, pragmas, path)
        )
    kept = apply_suppressions(findings, lines, pragmas)
    kept.sort(key=Finding.sort_key)
    return kept


def lint_file(
    path: Path,
    src_root: Path,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        path=str(path),
        module=module_name_for(path, src_root),
        rules=rules,
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen = set()
    collected: List[Path] = []
    for p in paths:
        if p.is_dir():
            collected.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            collected.append(p)
    for p in collected:
        key = p.resolve()
        if key not in seen:
            seen.add(key)
            yield p


def lint_paths(
    paths: Sequence[Path],
    src_root: Path,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``.

    Findings come back sorted by ``(path, line, col, code)`` regardless
    of filesystem walk order — the stability contract CI output and
    baseline diffs rely on.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, src_root, rules))
    findings.sort(key=Finding.sort_key)
    return findings
