"""Mergeable DDSketch-style quantile sketch for streaming latencies.

Rolling p50/p95/p99 over an event stream must not retain raw samples:
an open-loop serving run produces unbounded completions, and the
fleet-scale roadmap item needs per-device tail summaries that *merge*
into one fleet summary without raw-data shipping.  This module is the
standard answer — a DDSketch-style sketch with relative-error
guarantees (Masson, Rim & Lee, VLDB 2019):

* Values are hashed into logarithmic buckets: bucket ``i`` covers
  ``(γ^(i-1), γ^i]`` with ``γ = (1 + α) / (1 - α)`` for a configured
  relative accuracy ``α``.  Any value in a bucket differs from the
  bucket's midpoint estimate ``2γ^i / (γ + 1)`` by at most a factor
  ``α`` — so every reported quantile is within ``α`` *relative* error
  of an exact sample quantile, at any scale from microseconds to
  minutes, with O(1) insertion.
* ``merge`` adds bucket counts — exact, associative and commutative, so
  per-shard (per-device, per-window) sketches merged in any order equal
  the sketch of the concatenated stream.  The property tests pin this.
* count/sum/min/max are tracked exactly alongside the buckets, and the
  whole sketch serializes to a plain dict for JSONL/replay transport.

Quantiles use the *nearest-rank* definition (``ceil(q/100·n) - 1``, the
same convention as ``repro.util.percentile(..., method="nearest_rank")``)
— the returned estimate always describes one observed sample's bucket,
which is what makes the per-quantile relative-error bound provable.

This module is a dependency-free obs leaf: stdlib only, no clocks.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

from ..util import approx_eq

#: Values at or below this threshold land in the exact zero bucket —
#: the logarithm is undefined at 0 and latencies this small are noise.
MIN_TRACKABLE_VALUE = 1e-9

#: Default relative accuracy: reported quantiles within ±1%.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """A mergeable quantile sketch with bounded relative error.

    Args:
        relative_accuracy: The guarantee ``α``: every quantile estimate
            ``est`` satisfies ``|est - exact| <= α * exact`` where
            ``exact`` is the nearest-rank sample quantile.  Must be in
            (0, 1).

    Raises:
        ValueError: on an out-of-range ``relative_accuracy``.
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "count",
        "total",
        "low",
        "high",
    )

    def __init__(
        self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.low = math.inf
        self.high = -math.inf

    # ------------------------------------------------------------ insert

    def insert(self, value: float) -> None:
        """O(1) insert of one non-negative sample.

        Raises:
            ValueError: on a negative or non-finite value (latencies
                and queue depths are non-negative by construction).
        """
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"sketch values must be finite and >= 0, got {value}")
        if value <= MIN_TRACKABLE_VALUE:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.low = min(self.low, value)
        self.high = max(self.high, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.insert(value)

    # --------------------------------------------------------- quantiles

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]).

        Nearest-rank semantics: the estimate describes the bucket of
        the sample at rank ``ceil(q/100 · n) - 1`` in sorted order, so
        it is within ``relative_accuracy`` of that sample's true value
        (exactly equal at the tracked min/max).

        Raises:
            ValueError: on an empty sketch or ``q`` outside [0, 100].
        """
        if self.count == 0:
            raise ValueError("percentile of an empty sketch")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = math.ceil(q / 100.0 * self.count) - 1
        rank = max(0, min(self.count - 1, rank))
        # The extreme ranks *are* the tracked min/max — return them
        # exactly rather than their bucket midpoints.
        if rank == 0:
            return self.low
        if rank == self.count - 1:
            return self.high
        if rank < self._zero_count:
            return self.low  # all zero-bucket samples are <= 1e-9
        cumulative = self._zero_count
        estimate = self.high
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank < cumulative:
                estimate = 2.0 * self._gamma ** index / (self._gamma + 1.0)
                break
        # min/max are exact; clamping can only tighten the estimate.
        return min(max(estimate, self.low), self.high)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    # ------------------------------------------------------------- merge

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place; returns ``self``.

        Merging adds bucket counts, so it is exact: associative,
        commutative, and shard-merge equals the single-stream sketch.

        Raises:
            ValueError: when the two sketches were built with different
                ``relative_accuracy`` (their buckets are incompatible).
        """
        if not approx_eq(self.relative_accuracy, other.relative_accuracy):
            raise ValueError(
                "cannot merge sketches with different relative accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        self.low = min(self.low, other.low)
        self.high = max(self.high, other.high)
        return self

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.relative_accuracy)
        clone._buckets = dict(self._buckets)
        clone._zero_count = self._zero_count
        clone.count = self.count
        clone.total = self.total
        clone.low = self.low
        clone.high = self.high
        return clone

    # ----------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form (bucket keys as strings)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "sum": self.total,
            "min": self.low if self.count else None,
            "max": self.high if self.count else None,
            "zero_count": self._zero_count,
            "buckets": {
                str(index): n for index, n in sorted(self._buckets.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output.

        Raises:
            KeyError: on a missing required field.
            ValueError: on malformed counts/accuracy.
        """
        sketch = cls(float(doc["relative_accuracy"]))  # type: ignore[arg-type]
        buckets = doc.get("buckets", {})
        assert isinstance(buckets, dict)
        for key, n in buckets.items():
            count = int(n)  # type: ignore[arg-type]
            if count < 0:
                raise ValueError(f"bucket {key!r} has negative count {count}")
            sketch._buckets[int(key)] = count
        sketch._zero_count = int(doc.get("zero_count", 0))  # type: ignore[arg-type]
        sketch.count = int(doc["count"])  # type: ignore[arg-type]
        sketch.total = float(doc["sum"])  # type: ignore[arg-type]
        low = doc.get("min")
        high = doc.get("max")
        sketch.low = math.inf if low is None else float(low)  # type: ignore[arg-type]
        sketch.high = -math.inf if high is None else float(high)  # type: ignore[arg-type]
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "QuantileSketch(empty)"
        return (
            f"QuantileSketch(n={self.count}, p50={self.p50:.3g}, "
            f"p95={self.p95:.3g}, min={self.low:.3g}, max={self.high:.3g})"
        )


def merge_all(sketches: Iterable[QuantileSketch]) -> QuantileSketch:
    """Merge an iterable of sketches into a fresh one.

    Raises:
        ValueError: on an empty iterable or mismatched accuracies.
    """
    result: QuantileSketch = None  # type: ignore[assignment]
    for sketch in sketches:
        if result is None:
            result = sketch.copy()
        else:
            result.merge(sketch)
    if result is None:
        raise ValueError("merge_all of no sketches")
    return result
