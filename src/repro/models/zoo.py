"""The ten-model zoo used throughout the paper's evaluation.

Builders construct block-granularity :class:`~repro.models.ir.ModelGraph`
instances for AlexNet, VGG16, GoogLeNet, InceptionV4, ResNet50, YOLOv4,
MobileNetV2, SqueezeNet, BERT and ViT with FLOP and byte counts derived
from the published architectures.  Absolute counts match the literature to
within a few percent at batch 1:

=============  ============  ==============
model          ~GFLOPs       ~params (M)
=============  ============  ==============
AlexNet        1.4           61
VGG16          31            138
GoogLeNet      3.0           7.0
InceptionV4    24            43
ResNet50       8.2           25.6
YOLOv4 (416)   60            64
MobileNetV2    0.6           3.5
SqueezeNet     0.7           1.25
BERT-base      22 (seq 128)  110
ViT-B/16       35 (seq 197)  86
=============  ============  ==============

Each builder linearizes the network into the block sequence the planner
partitions; branch-internal parallelism (inception branches, residual
adds, YOLO routes) is folded into single layers, matching the paper's
coarse-grained slicing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from . import flops as F
from .ir import Layer, ModelGraph, OpType

_Builder = Callable[[], ModelGraph]


def _conv_layer(
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int,
    in_dim: int,
    stride: int = 1,
    padding: int | None = None,
    op: OpType = OpType.CONV,
    groups: int = 1,
) -> Tuple[Layer, int]:
    """Build a conv layer and return it with its spatial output dimension."""
    if padding is None:
        padding = kernel // 2
    out_dim = F.conv_out_dim(in_dim, kernel, stride, padding)
    layer_flops = F.conv2d_flops(in_ch, out_ch, kernel, out_dim, out_dim, groups)
    weights = F.conv2d_weight_bytes(in_ch, out_ch, kernel, groups)
    in_bytes = F.tensor_bytes(in_ch, in_dim, in_dim)
    out_bytes = F.tensor_bytes(out_ch, out_dim, out_dim)
    layer = Layer(
        name=name,
        op=op,
        flops=layer_flops,
        weight_bytes=weights,
        activation_bytes=in_bytes + out_bytes,
        output_bytes=out_bytes,
        output_shape=(out_ch, out_dim, out_dim),
    )
    return layer, out_dim


def _pool_layer(
    name: str, channels: int, in_dim: int, kernel: int, stride: int, padding: int = 0
) -> Tuple[Layer, int]:
    out_dim = F.conv_out_dim(in_dim, kernel, stride, padding)
    out_bytes = F.tensor_bytes(channels, out_dim, out_dim)
    in_bytes = F.tensor_bytes(channels, in_dim, in_dim)
    layer = Layer(
        name=name,
        op=OpType.POOL,
        flops=F.pool_flops(channels, out_dim, out_dim, kernel),
        weight_bytes=0.0,
        activation_bytes=in_bytes + out_bytes,
        output_bytes=out_bytes,
        output_shape=(channels, out_dim, out_dim),
    )
    return layer, out_dim


def _fc_layer(name: str, in_features: int, out_features: int) -> Layer:
    out_bytes = F.tensor_bytes(out_features)
    return Layer(
        name=name,
        op=OpType.FULLY_CONNECTED,
        flops=F.linear_flops(in_features, out_features),
        weight_bytes=F.linear_weight_bytes(in_features, out_features),
        activation_bytes=F.tensor_bytes(in_features) + out_bytes,
        output_bytes=out_bytes,
        output_shape=(out_features,),
    )


def build_alexnet() -> ModelGraph:
    """AlexNet: five convolutions followed by three huge FC layers.

    The FC layers hold ~58 of the 61 M parameters and are the canonical
    memory-bound MatMul of Observation 2.
    """
    layers: List[Layer] = []
    specs = [
        # (in_ch, out_ch, kernel, stride, padding)
        (3, 96, 11, 4, 2),
        (96, 256, 5, 1, 2),
        (256, 384, 3, 1, 1),
        (384, 384, 3, 1, 1),
        (384, 256, 3, 1, 1),
    ]
    dim = 224
    pools_after = {0, 1, 4}
    in_ch = 3
    for i, (cin, cout, k, s, p) in enumerate(specs):
        layer, dim = _conv_layer(f"conv{i + 1}", cin, cout, k, dim, s, p)
        layers.append(layer)
        if i in pools_after:
            pool, dim = _pool_layer(f"pool{i + 1}", cout, dim, 3, 2)
            layers.append(pool)
        in_ch = cout
    feat = in_ch * dim * dim
    layers.append(_fc_layer("fc6", feat, 4096))
    layers.append(_fc_layer("fc7", 4096, 4096))
    layers.append(_fc_layer("fc8", 4096, 1000))
    return ModelGraph(
        name="alexnet",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def build_vgg16() -> ModelGraph:
    """VGG16: 13 3x3 convolutions in five stages plus three FC layers."""
    layers: List[Layer] = []
    stages = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    dim = 224
    in_ch = 3
    idx = 0
    for stage_no, (channels, count) in enumerate(stages, start=1):
        for rep in range(count):
            idx += 1
            layer, dim = _conv_layer(
                f"conv{stage_no}_{rep + 1}", in_ch, channels, 3, dim, 1, 1
            )
            layers.append(layer)
            in_ch = channels
        pool, dim = _pool_layer(f"pool{stage_no}", channels, dim, 2, 2)
        layers.append(pool)
    feat = in_ch * dim * dim
    layers.append(_fc_layer("fc6", feat, 4096))
    layers.append(_fc_layer("fc7", 4096, 4096))
    layers.append(_fc_layer("fc8", 4096, 1000))
    return ModelGraph(
        name="vgg16",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def _inception_block(
    name: str, in_ch: int, out_ch: int, dim: int, reduction: float = 0.35
) -> Layer:
    """One fused inception block (parallel 1x1/3x3/5x5 branches + concat).

    The branch structure is folded into a single layer with the combined
    FLOP/byte cost; ``reduction`` approximates the bottleneck 1x1 savings.
    """
    flops_1x1 = F.conv2d_flops(in_ch, out_ch // 4, 1, dim, dim)
    flops_3x3 = F.conv2d_flops(int(in_ch * reduction), out_ch // 2, 3, dim, dim)
    flops_5x5 = F.conv2d_flops(int(in_ch * reduction / 2), out_ch // 8, 5, dim, dim)
    flops_proj = F.conv2d_flops(in_ch, out_ch // 8, 1, dim, dim)
    total_flops = flops_1x1 + flops_3x3 + flops_5x5 + flops_proj
    weights = (
        F.conv2d_weight_bytes(in_ch, out_ch // 4, 1)
        + F.conv2d_weight_bytes(int(in_ch * reduction), out_ch // 2, 3)
        + F.conv2d_weight_bytes(int(in_ch * reduction / 2), out_ch // 8, 5)
        + F.conv2d_weight_bytes(in_ch, out_ch // 8, 1)
    )
    in_bytes = F.tensor_bytes(in_ch, dim, dim)
    out_bytes = F.tensor_bytes(out_ch, dim, dim)
    # Branch concat re-reads all branch outputs: count activations ~3x.
    return Layer(
        name=name,
        op=OpType.CONCAT,
        flops=total_flops,
        weight_bytes=weights,
        activation_bytes=3.0 * (in_bytes + out_bytes),
        output_bytes=out_bytes,
        output_shape=(out_ch, dim, dim),
    )


def build_googlenet() -> ModelGraph:
    """GoogLeNet: conv stem, nine inception blocks, global pool + FC."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem_conv1", 3, 64, 7, 224, 2, 3)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool1", 64, dim, 3, 2, 1)
    layers.append(pool)
    layer, dim = _conv_layer("stem_conv2", 64, 192, 3, dim, 1, 1)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool2", 192, dim, 3, 2, 1)
    layers.append(pool)

    blocks = [
        ("3a", 192, 256), ("3b", 256, 480),
        ("4a", 480, 512), ("4b", 512, 512), ("4c", 512, 512),
        ("4d", 512, 528), ("4e", 528, 832),
        ("5a", 832, 832), ("5b", 832, 1024),
    ]
    downsample_after = {"3b", "4e"}
    in_ch = 192
    for tag, cin, cout in blocks:
        layers.append(_inception_block(f"inception_{tag}", cin, cout, dim))
        in_ch = cout
        if tag in downsample_after:
            pool, dim = _pool_layer(f"pool_{tag}", cout, dim, 3, 2, 1)
            layers.append(pool)
    pool, dim = _pool_layer("global_pool", in_ch, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("fc", in_ch, 1000))
    return ModelGraph(
        name="googlenet",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def build_inceptionv4() -> ModelGraph:
    """InceptionV4: deeper stem plus 4xA, 7xB, 3xC inception blocks."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem_conv1", 3, 32, 3, 299, 2, 0)
    layers.append(layer)
    layer, dim = _conv_layer("stem_conv2", 32, 64, 3, dim, 1, 1)
    layers.append(layer)
    layer, dim = _conv_layer("stem_conv3", 64, 160, 3, dim, 2, 0)
    layers.append(layer)
    layer, dim = _conv_layer("stem_conv4", 160, 384, 3, dim, 1, 1)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool", 384, dim, 3, 2)
    layers.append(pool)

    for i in range(4):
        layers.append(_inception_block(f"inception_a{i + 1}", 384, 384, dim))
    pool, dim = _pool_layer("reduction_a", 384, dim, 3, 2)
    layers.append(pool)
    for i in range(7):
        layers.append(_inception_block(f"inception_b{i + 1}", 1024, 1024, dim, 0.5))
    pool, dim = _pool_layer("reduction_b", 1024, dim, 3, 2)
    layers.append(pool)
    for i in range(3):
        layers.append(_inception_block(f"inception_c{i + 1}", 1536, 1536, dim, 0.5))
    pool, dim = _pool_layer("global_pool", 1536, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("fc", 1536, 1000))
    return ModelGraph(
        name="inceptionv4",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 299, 299),
    )


def _bottleneck_block(
    name: str, in_ch: int, mid_ch: int, out_ch: int, dim: int, stride: int = 1
) -> Tuple[Layer, int]:
    """A fused ResNet bottleneck (1x1 -> 3x3 -> 1x1 + residual add)."""
    out_dim = dim // stride
    flops_total = (
        F.conv2d_flops(in_ch, mid_ch, 1, dim, dim)
        + F.conv2d_flops(mid_ch, mid_ch, 3, out_dim, out_dim)
        + F.conv2d_flops(mid_ch, out_ch, 1, out_dim, out_dim)
        + F.elementwise_flops(out_ch, out_dim, out_dim)
    )
    weights = (
        F.conv2d_weight_bytes(in_ch, mid_ch, 1)
        + F.conv2d_weight_bytes(mid_ch, mid_ch, 3)
        + F.conv2d_weight_bytes(mid_ch, out_ch, 1)
    )
    if stride != 1 or in_ch != out_ch:
        flops_total += F.conv2d_flops(in_ch, out_ch, 1, out_dim, out_dim)
        weights += F.conv2d_weight_bytes(in_ch, out_ch, 1)
    in_bytes = F.tensor_bytes(in_ch, dim, dim)
    out_bytes = F.tensor_bytes(out_ch, out_dim, out_dim)
    layer = Layer(
        name=name,
        op=OpType.ADD,
        flops=flops_total,
        weight_bytes=weights,
        activation_bytes=2.0 * (in_bytes + out_bytes),
        output_bytes=out_bytes,
        output_shape=(out_ch, out_dim, out_dim),
    )
    return layer, out_dim


def build_resnet50() -> ModelGraph:
    """ResNet50: 7x7 stem, 3+4+6+3 bottleneck blocks, global pool + FC."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem_conv", 3, 64, 7, 224, 2, 3)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool", 64, dim, 3, 2, 1)
    layers.append(pool)
    stages = [
        # (blocks, mid_ch, out_ch, first_stride)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ]
    in_ch = 64
    for stage_no, (count, mid, out, first_stride) in enumerate(stages, start=2):
        for rep in range(count):
            stride = first_stride if rep == 0 else 1
            block, dim = _bottleneck_block(
                f"res{stage_no}_{rep + 1}", in_ch, mid, out, dim, stride
            )
            layers.append(block)
            in_ch = out
    pool, dim = _pool_layer("global_pool", in_ch, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("fc", in_ch, 1000))
    return ModelGraph(
        name="resnet50",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def _csp_block(
    name: str, channels: int, dim: int, repeats: int, mish: bool = True
) -> Layer:
    """A fused CSPDarknet residual stage with Mish activations."""
    half = channels // 2
    block_flops = 0.0
    weights = 0.0
    for _ in range(repeats):
        block_flops += F.conv2d_flops(half, half, 1, dim, dim)
        block_flops += F.conv2d_flops(half, half, 3, dim, dim)
        weights += F.conv2d_weight_bytes(half, half, 1)
        weights += F.conv2d_weight_bytes(half, half, 3)
    # Mish activation cost over the stage output (exp/tanh heavy: ~8 ops).
    block_flops += 8.0 * F.elementwise_flops(channels, dim, dim) * repeats
    out_bytes = F.tensor_bytes(channels, dim, dim)
    return Layer(
        name=name,
        op=OpType.MISH if mish else OpType.CONV,
        flops=block_flops,
        weight_bytes=weights,
        activation_bytes=3.0 * out_bytes * max(1, repeats),
        output_bytes=out_bytes,
        output_shape=(channels, dim, dim),
    )


def build_yolov4() -> ModelGraph:
    """YOLOv4 at 416x416: CSPDarknet53 backbone, SPP+PAN neck, 3 heads.

    Mish activations and the upsampling route layers are outside the
    simulated NPU's operator set, reproducing the paper's NPU error.
    """
    layers: List[Layer] = []
    dim = 416
    layer, dim = _conv_layer("stem", 3, 32, 3, dim, 1, 1, op=OpType.MISH)
    layers.append(layer)
    backbone = [
        # (channels, repeats)
        (64, 1), (128, 2), (256, 8), (512, 8), (1024, 4),
    ]
    in_ch = 32
    for i, (channels, repeats) in enumerate(backbone, start=1):
        down, dim = _conv_layer(
            f"down{i}", in_ch, channels, 3, dim, 2, 1, op=OpType.MISH
        )
        layers.append(down)
        layers.append(_csp_block(f"csp{i}", channels, dim, repeats))
        in_ch = channels
    # SPP block: three max-pools + concat at 13x13.
    spp_out = F.tensor_bytes(2048, dim, dim)
    layers.append(
        Layer(
            name="spp",
            op=OpType.CONCAT,
            flops=F.pool_flops(1024, dim, dim, 13)
            + F.pool_flops(1024, dim, dim, 9)
            + F.pool_flops(1024, dim, dim, 5),
            weight_bytes=0.0,
            activation_bytes=4 * F.tensor_bytes(1024, dim, dim) + spp_out,
            output_bytes=spp_out,
            output_shape=(2048, dim, dim),
        )
    )
    # PAN neck: upsample + concat + conv stacks at 26x26 and 52x52.
    neck = [("pan_up1", 512, dim * 2), ("pan_up2", 256, dim * 4)]
    prev_ch = 2048
    for name, channels, ndim in neck:
        up_bytes = F.tensor_bytes(channels, ndim, ndim)
        layers.append(
            Layer(
                name=name,
                op=OpType.UPSAMPLE,
                flops=F.elementwise_flops(channels, ndim, ndim),
                weight_bytes=F.conv2d_weight_bytes(prev_ch, channels, 1),
                activation_bytes=3.0 * up_bytes,
                output_bytes=up_bytes,
                output_shape=(channels, ndim, ndim),
            )
        )
        stack, _ = _conv_layer(
            f"{name}_convs", channels * 2, channels, 3, ndim, 1, 1
        )
        layers.append(stack)
        prev_ch = channels
    # Three detection heads (53x53, 26x26, 13x13 equivalents).
    for i, (channels, hdim) in enumerate(
        [(256, dim * 4), (512, dim * 2), (1024, dim)], start=1
    ):
        head, _ = _conv_layer(f"head{i}", channels, 255, 1, hdim, 1, 0)
        layers.append(head)
    return ModelGraph(
        name="yolov4",
        layers=tuple(layers),
        family="detector",
        input_bytes=F.tensor_bytes(3, 416, 416),
    )


def _inverted_residual(
    name: str, in_ch: int, out_ch: int, dim: int, stride: int, expand: int = 6
) -> Tuple[Layer, int]:
    """A fused MobileNetV2 inverted-residual block (expand/dw/project)."""
    mid = in_ch * expand
    out_dim = dim // stride
    flops_total = (
        F.conv2d_flops(in_ch, mid, 1, dim, dim)
        + F.depthwise_conv_flops(mid, 3, out_dim, out_dim)
        + F.conv2d_flops(mid, out_ch, 1, out_dim, out_dim)
    )
    weights = (
        F.conv2d_weight_bytes(in_ch, mid, 1)
        + F.conv2d_weight_bytes(1, mid, 3)
        + F.conv2d_weight_bytes(mid, out_ch, 1)
    )
    in_bytes = F.tensor_bytes(in_ch, dim, dim)
    mid_bytes = F.tensor_bytes(mid, out_dim, out_dim)
    out_bytes = F.tensor_bytes(out_ch, out_dim, out_dim)
    # Expansion inflates activations 6x: depthwise stages are memory-bound.
    layer = Layer(
        name=name,
        op=OpType.DEPTHWISE_CONV,
        flops=flops_total,
        weight_bytes=weights,
        activation_bytes=in_bytes + 2.0 * mid_bytes + out_bytes,
        output_bytes=out_bytes,
        output_shape=(out_ch, out_dim, out_dim),
    )
    return layer, out_dim


def build_mobilenetv2() -> ModelGraph:
    """MobileNetV2: conv stem, 17 inverted residual blocks, 1x1 head."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem", 3, 32, 3, 224, 2, 1)
    layers.append(layer)
    config = [
        # (expand, out_ch, repeats, stride)
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    in_ch = 32
    idx = 0
    for expand, out_ch, repeats, first_stride in config:
        for rep in range(repeats):
            idx += 1
            stride = first_stride if rep == 0 else 1
            block, dim = _inverted_residual(
                f"block{idx}", in_ch, out_ch, dim, stride, expand
            )
            layers.append(block)
            in_ch = out_ch
    head, dim = _conv_layer("head_conv", in_ch, 1280, 1, dim, 1, 0)
    layers.append(head)
    pool, dim = _pool_layer("global_pool", 1280, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("fc", 1280, 1000))
    return ModelGraph(
        name="mobilenetv2",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def _fire_module(
    name: str, in_ch: int, squeeze: int, expand: int, dim: int
) -> Layer:
    """A fused SqueezeNet fire module (squeeze 1x1 + expand 1x1/3x3 concat).

    Fire modules have tiny weights but wide concatenated activations —
    the structural cause of SqueezeNet's outsized contention footprint
    (Observation 3).
    """
    out_ch = expand * 2
    flops_total = (
        F.conv2d_flops(in_ch, squeeze, 1, dim, dim)
        + F.conv2d_flops(squeeze, expand, 1, dim, dim)
        + F.conv2d_flops(squeeze, expand, 3, dim, dim)
    )
    weights = (
        F.conv2d_weight_bytes(in_ch, squeeze, 1)
        + F.conv2d_weight_bytes(squeeze, expand, 1)
        + F.conv2d_weight_bytes(squeeze, expand, 3)
    )
    in_bytes = F.tensor_bytes(in_ch, dim, dim)
    out_bytes = F.tensor_bytes(out_ch, dim, dim)
    # The 1x1/3x3 concat rereads both expand outputs: ~3.5x traffic.
    return Layer(
        name=name,
        op=OpType.CONCAT,
        flops=flops_total,
        weight_bytes=weights,
        activation_bytes=3.5 * (in_bytes + out_bytes),
        output_bytes=out_bytes,
        output_shape=(out_ch, dim, dim),
    )


def build_squeezenet() -> ModelGraph:
    """SqueezeNet 1.0: conv stem, eight fire modules, final 1x1 conv."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem", 3, 96, 7, 224, 2, 0)
    layers.append(layer)
    pool, dim = _pool_layer("pool1", 96, dim, 3, 2)
    layers.append(pool)
    fires = [
        # (in_ch, squeeze, expand)
        (96, 16, 64), (128, 16, 64), (128, 32, 128),
    ]
    for i, (cin, squeeze, expand) in enumerate(fires, start=2):
        layers.append(_fire_module(f"fire{i}", cin, squeeze, expand, dim))
    pool, dim = _pool_layer("pool4", 256, dim, 3, 2)
    layers.append(pool)
    fires = [(256, 32, 128), (256, 48, 192), (384, 48, 192), (384, 64, 256)]
    for i, (cin, squeeze, expand) in enumerate(fires, start=5):
        layers.append(_fire_module(f"fire{i}", cin, squeeze, expand, dim))
    pool, dim = _pool_layer("pool8", 512, dim, 3, 2)
    layers.append(pool)
    layers.append(_fire_module("fire9", 512, 64, 256, dim))
    final, dim = _conv_layer("conv10", 512, 1000, 1, dim, 1, 0)
    layers.append(final)
    pool, dim = _pool_layer("global_pool", 1000, dim, dim, 1)
    layers.append(pool)
    return ModelGraph(
        name="squeezenet",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def _transformer_encoder_block(
    name: str,
    seq_len: int,
    hidden: int,
    heads: int,
    intermediate: int,
    masked: bool,
) -> Layer:
    """One fused Transformer encoder block (MHA + 2 LN + FFN).

    The block is a single schedulable unit, matching the coarse slicing
    used for the CNN blocks.  ``masked`` marks BERT-style attention with
    sequence masking — the gather/select ops it needs are outside the
    simulated NPU's operator set, so every BERT encoder block (not just
    the embedding) falls back to CPU/GPU, reproducing the whole-model
    NPU error of Fig. 1.  ViT's unmasked attention converts fine.
    """
    token_bytes = F.tensor_bytes(seq_len, hidden)
    flops_total = (
        F.attention_flops(seq_len, hidden, heads)
        + F.ffn_flops(seq_len, hidden, intermediate)
        + 2 * F.layer_norm_flops(seq_len, hidden)
    )
    weights = (
        F.attention_weight_bytes(hidden)
        + F.ffn_weight_bytes(hidden, intermediate)
        + 2 * F.tensor_bytes(2, hidden)
    )
    # Score matrices (heads x seq x seq) and the expanded FFN activations
    # dominate traffic at long sequence lengths.
    activations = (
        6 * token_bytes
        + F.tensor_bytes(heads, seq_len, seq_len)
        + 2 * F.tensor_bytes(seq_len, intermediate)
    )
    return Layer(
        name=name,
        op=OpType.MASKED_ATTENTION if masked else OpType.ATTENTION,
        flops=flops_total,
        weight_bytes=weights,
        activation_bytes=activations,
        output_bytes=token_bytes,
        output_shape=(seq_len, hidden),
    )


def build_bert(seq_len: int = 128) -> ModelGraph:
    """BERT-base: embedding gather + 12 fused encoder blocks + pooler.

    Both the embedding gather and the masked attention in every encoder
    block are outside the simulated NPU's operator set, so no part of
    BERT can run on the NPU — reproducing the NPU error the paper
    reports for BERT in Fig. 1.
    """
    hidden, heads, intermediate, vocab = 768, 12, 3072, 30522
    layers: List[Layer] = [
        Layer(
            name="embedding",
            op=OpType.EMBEDDING,
            flops=F.elementwise_flops(seq_len, hidden) * 3,
            weight_bytes=F.tensor_bytes(vocab, hidden)
            + F.tensor_bytes(512, hidden),
            activation_bytes=2 * F.tensor_bytes(seq_len, hidden),
            output_bytes=F.tensor_bytes(seq_len, hidden),
            output_shape=(seq_len, hidden),
        )
    ]
    for i in range(12):
        layers.append(
            _transformer_encoder_block(
                f"encoder{i + 1}", seq_len, hidden, heads, intermediate,
                masked=True,
            )
        )
    layers.append(_fc_layer("pooler", hidden, hidden))
    return ModelGraph(
        name="bert",
        layers=tuple(layers),
        family="transformer",
        input_bytes=F.tensor_bytes(seq_len) * 2,
    )


def build_vit(seq_len: int = 197) -> ModelGraph:
    """ViT-B/16: conv patch embedding + 12 fused encoder blocks + head.

    Unlike BERT, the patch embedding is an ordinary (supported) strided
    convolution and the attention is unmasked, so ViT runs fully on the
    NPU — matching Fig. 1 where only YOLOv4 and BERT error out.
    """
    hidden, heads, intermediate = 768, 12, 3072
    patch_embed, _ = _conv_layer("patch_embed", 3, hidden, 16, 224, 16, 0)
    layers: List[Layer] = [patch_embed]
    for i in range(12):
        layers.append(
            _transformer_encoder_block(
                f"encoder{i + 1}", seq_len, hidden, heads, intermediate,
                masked=False,
            )
        )
    layers.append(_fc_layer("head", hidden, 1000))
    return ModelGraph(
        name="vit",
        layers=tuple(layers),
        family="transformer",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


#: Registry of all builders, keyed by canonical model name.
MODEL_BUILDERS: Dict[str, _Builder] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "googlenet": build_googlenet,
    "inceptionv4": build_inceptionv4,
    "resnet50": build_resnet50,
    "yolov4": build_yolov4,
    "mobilenetv2": build_mobilenetv2,
    "squeezenet": build_squeezenet,
    "bert": build_bert,
    "vit": build_vit,
}

#: The evaluation order used in the paper's figures.
MODEL_NAMES: Tuple[str, ...] = tuple(MODEL_BUILDERS)

#: Models the paper groups as "lightweight" (Fig. 9 / Sec. VI-D).
LIGHTWEIGHT_MODELS = ("squeezenet", "mobilenetv2", "googlenet")
#: Models the paper groups as "medium" (100-300 MB working set).
MEDIUM_MODELS = ("inceptionv4", "resnet50", "alexnet")
#: Models the paper groups as "large" (over 300 MB working set).
LARGE_MODELS = ("bert", "vit", "yolov4")

_CACHE: Dict[str, ModelGraph] = {}


def get_model(name: str) -> ModelGraph:
    """Build (and cache) a model by canonical name.

    Raises:
        KeyError: if ``name`` is not in :data:`MODEL_BUILDERS`.
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        )
    if key not in _CACHE:
        _CACHE[key] = MODEL_BUILDERS[key]()
    return _CACHE[key]


def all_models() -> Tuple[ModelGraph, ...]:
    """All ten evaluation models, in the paper's canonical order."""
    return tuple(get_model(name) for name in MODEL_NAMES)
