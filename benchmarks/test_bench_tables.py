"""Table I and Appendix A benchmarks: capability matrix, search space."""

from repro.experiments import searchspace, table1_comparison


def test_bench_table1_capability_matrix(run_once):
    rows = run_once(table1_comparison.run)
    print("\n" + table1_comparison.render(rows))

    assert len(rows) == 10
    h2p = [r for r in rows if r.name == "Hetero2Pipe"][0]
    assert h2p.multi_dnn and h2p.dnn_heterogeneity
    assert h2p.pipeline and h2p.contention
    # No other scheme ticks all four boxes.
    others = [
        r
        for r in rows
        if r.name != "Hetero2Pipe"
        and r.multi_dnn
        and r.dnn_heterogeneity
        and r.pipeline
        and r.contention
    ]
    assert not others


def test_bench_appendix_search_space(run_once):
    summary = run_once(searchspace.run)
    print("\n" + searchspace.render(summary))

    # Paper: 449 feasible pipelines for P in [2, 10]; the literal Eq. 12
    # evaluation lands within a few percent and our direct enumeration
    # in the same order of magnitude.
    assert abs(summary.pipelines_eq12 - 449) <= 20
    assert 250 <= summary.pipelines_total <= 600
    # Paper: billions of split combinations for MobileNetV2; the point
    # is combinatorial explosion, which either count demonstrates.
    assert summary.mobilenet_splits > 1e7
