"""Extended zoo: the introduction's application models.

The paper's motivating scene-understanding app combines "YOLO for
robust object detection, FaceNet, Age/GenderNet for facial, age and
gender recognition and ViT-GPT2 for scene-to-text captioning".  The
evaluation zoo (:mod:`repro.models.zoo`) covers YOLO and the ViT
encoder; this module adds the remaining three so the full application
can be planned end to end:

* **FaceNet** — Inception-ResNet-v1 backbone at 160x160 producing a
  128-d embedding (~1.6 GFLOPs, ~27 M params).
* **Age/GenderNet** — the Levi-Hassner 3-conv/2-FC CNN at 227x227
  (~0.8 GFLOPs, ~11 M params), FC-dominated like AlexNet.
* **GPT-2 decoder** — a 12-layer, 768-hidden causal Transformer
  generating a caption from the ViT encoder's output.  Causal masking
  needs the same gather/select machinery as BERT's masked attention, so
  GPT-2 is NPU-incompatible on the simulated DaVinci-class NPU.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import flops as F
from .ir import Layer, ModelGraph, OpType
from .zoo import _conv_layer, _fc_layer, _pool_layer, _transformer_encoder_block


def _inception_resnet_block(
    name: str, channels: int, dim: int, reduction: float = 0.3
) -> Layer:
    """A fused Inception-ResNet block (branches + 1x1 up-proj + add)."""
    branch_ch = max(32, int(channels * reduction))
    flops_total = (
        F.conv2d_flops(channels, branch_ch, 1, dim, dim) * 3
        + F.conv2d_flops(branch_ch, branch_ch, 3, dim, dim) * 2
        + F.conv2d_flops(branch_ch * 3, channels, 1, dim, dim)
        + F.elementwise_flops(channels, dim, dim)
    )
    weights = (
        3 * F.conv2d_weight_bytes(channels, branch_ch, 1)
        + 2 * F.conv2d_weight_bytes(branch_ch, branch_ch, 3)
        + F.conv2d_weight_bytes(branch_ch * 3, channels, 1)
    )
    out_bytes = F.tensor_bytes(channels, dim, dim)
    return Layer(
        name=name,
        op=OpType.ADD,
        flops=flops_total,
        weight_bytes=weights,
        activation_bytes=3.0 * out_bytes,
        output_bytes=out_bytes,
        output_shape=(channels, dim, dim),
    )


def build_facenet() -> ModelGraph:
    """FaceNet: Inception-ResNet-v1 at 160x160 -> 128-d embedding."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem_conv1", 3, 32, 3, 160, 2, 0)
    layers.append(layer)
    layer, dim = _conv_layer("stem_conv2", 32, 64, 3, dim, 1, 1)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool", 64, dim, 3, 2)
    layers.append(pool)
    layer, dim = _conv_layer("stem_conv3", 64, 192, 3, dim, 1, 1)
    layers.append(layer)
    layer, dim = _conv_layer("stem_conv4", 192, 256, 3, dim, 2, 0)
    layers.append(layer)

    for i in range(5):
        layers.append(_inception_resnet_block(f"block_a{i + 1}", 256, dim))
    pool, dim = _pool_layer("reduction_a", 256, dim, 3, 2)
    layers.append(pool)
    for i in range(10):
        layers.append(_inception_resnet_block(f"block_b{i + 1}", 896, dim, 0.15))
    pool, dim = _pool_layer("reduction_b", 896, dim, 3, 2)
    layers.append(pool)
    for i in range(5):
        layers.append(_inception_resnet_block(f"block_c{i + 1}", 1792, dim, 0.1))
    pool, dim = _pool_layer("global_pool", 1792, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("embedding", 1792, 128))
    return ModelGraph(
        name="facenet",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 160, 160),
    )


def build_agegendernet() -> ModelGraph:
    """Age/GenderNet (Levi-Hassner): 3 conv + 2 FC at 227x227."""
    layers: List[Layer] = []
    layer, dim = _conv_layer("conv1", 3, 96, 7, 227, 4, 0)
    layers.append(layer)
    pool, dim = _pool_layer("pool1", 96, dim, 3, 2)
    layers.append(pool)
    layer, dim = _conv_layer("conv2", 96, 256, 5, dim, 1, 2)
    layers.append(layer)
    pool, dim = _pool_layer("pool2", 256, dim, 3, 2)
    layers.append(pool)
    layer, dim = _conv_layer("conv3", 256, 384, 3, dim, 1, 1)
    layers.append(layer)
    pool, dim = _pool_layer("pool3", 384, dim, 3, 2)
    layers.append(pool)
    feat = 384 * dim * dim
    layers.append(_fc_layer("fc1", feat, 512))
    layers.append(_fc_layer("fc2", 512, 512))
    layers.append(_fc_layer("output", 512, 10))  # 8 age buckets + 2 genders
    return ModelGraph(
        name="agegendernet",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 227, 227),
    )


def build_gpt2(seq_len: int = 64) -> ModelGraph:
    """GPT-2 small decoder: embedding + 12 causal blocks + LM head.

    Causal (masked) attention keeps every decoder block off the NPU,
    like BERT's encoder — the captioning tail of the paper's app runs
    on CPU/GPU.
    """
    hidden, heads, intermediate, vocab = 768, 12, 3072, 50257
    layers: List[Layer] = [
        Layer(
            name="embedding",
            op=OpType.EMBEDDING,
            flops=F.elementwise_flops(seq_len, hidden) * 2,
            weight_bytes=F.tensor_bytes(vocab, hidden)
            + F.tensor_bytes(1024, hidden),
            activation_bytes=2 * F.tensor_bytes(seq_len, hidden),
            output_bytes=F.tensor_bytes(seq_len, hidden),
            output_shape=(seq_len, hidden),
        )
    ]
    for i in range(12):
        layers.append(
            _transformer_encoder_block(
                f"decoder{i + 1}", seq_len, hidden, heads, intermediate,
                masked=True,
            )
        )
    layers.append(_fc_layer("lm_head", hidden, vocab))
    return ModelGraph(
        name="gpt2",
        layers=tuple(layers),
        family="transformer",
        input_bytes=F.tensor_bytes(seq_len) * 2,
    )


#: Extended builders, merged into :func:`repro.models.zoo.get_model`'s
#: lookup by :func:`register_extended_models`.
EXTENDED_MODEL_BUILDERS = {
    "facenet": build_facenet,
    "agegendernet": build_agegendernet,
    "gpt2": build_gpt2,
}


def register_extended_models() -> Tuple[str, ...]:
    """Make the extended models resolvable via ``get_model``.

    Idempotent.  The evaluation registry (``MODEL_NAMES``) is left
    untouched so the paper's 10-model sweeps stay exactly the paper's.

    Returns:
        The names registered.
    """
    from . import zoo

    for name, builder in EXTENDED_MODEL_BUILDERS.items():
        zoo.MODEL_BUILDERS.setdefault(name, builder)
    return tuple(EXTENDED_MODEL_BUILDERS)
