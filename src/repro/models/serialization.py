"""JSON (de)serialization of models and plans.

A production planner runs offline profiling on-device and ships plans to
the runtime; both sides need a stable wire format.  This module
serializes :class:`~repro.models.ir.ModelGraph` (so custom models can be
defined outside the zoo) and :class:`~repro.core.plan.PipelinePlan`
assignments (so a planned schedule can be stored and re-loaded).
"""

from __future__ import annotations

import json
from typing import Dict, List, TYPE_CHECKING

from .ir import Layer, ModelGraph, OpType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.plan import PipelinePlan

#: Format version embedded in every document.
FORMAT_VERSION = 1


def model_to_dict(model: ModelGraph) -> Dict:
    """Plain-dict form of a model graph."""
    return {
        "version": FORMAT_VERSION,
        "kind": "model",
        "name": model.name,
        "family": model.family,
        "input_bytes": model.input_bytes,
        "layers": [
            {
                "name": layer.name,
                "op": layer.op.value,
                "flops": layer.flops,
                "weight_bytes": layer.weight_bytes,
                "activation_bytes": layer.activation_bytes,
                "output_bytes": layer.output_bytes,
                "output_shape": list(layer.output_shape),
            }
            for layer in model.layers
        ],
    }


def model_from_dict(data: Dict) -> ModelGraph:
    """Reconstruct a model graph from its dict form.

    Raises:
        ValueError: on version/kind mismatch or malformed layers.
        KeyError: on missing fields.
    """
    if data.get("kind") != "model":
        raise ValueError(f"not a model document: kind={data.get('kind')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('version')!r}"
        )
    layers = tuple(
        Layer(
            name=entry["name"],
            op=OpType(entry["op"]),
            flops=float(entry["flops"]),
            weight_bytes=float(entry["weight_bytes"]),
            activation_bytes=float(entry["activation_bytes"]),
            output_bytes=float(entry["output_bytes"]),
            output_shape=tuple(entry.get("output_shape", ())),
        )
        for entry in data["layers"]
    )
    return ModelGraph(
        name=data["name"],
        layers=layers,
        family=data.get("family", "cnn"),
        input_bytes=float(data.get("input_bytes", 0.0)),
    )


def model_to_json(model: ModelGraph, indent: int | None = None) -> str:
    return json.dumps(model_to_dict(model), indent=indent)


def model_from_json(text: str) -> ModelGraph:
    return model_from_dict(json.loads(text))


def save_model(model: ModelGraph, path: str) -> None:
    """Write a model to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(model_to_json(model, indent=2))


def load_model(path: str) -> ModelGraph:
    """Read a model from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return model_from_json(handle.read())


def plan_to_dict(plan: "PipelinePlan") -> Dict:
    """Plain-dict form of a plan's placement decisions.

    Stores the SoC name, stage processor names, execution order and
    per-request slices — everything a runtime needs to reconstruct the
    schedule given the same model set.
    """
    return {
        "version": FORMAT_VERSION,
        "kind": "plan",
        "soc": plan.soc.name,
        "processors": [p.name for p in plan.processors],
        "order": list(plan.order),
        "requests": [
            {
                "model": assignment.model_name,
                "slices": [
                    None if s is None else [s[0], s[1]]
                    for s in assignment.slices
                ],
            }
            for assignment in plan.assignments
        ],
    }


def plan_to_json(plan: "PipelinePlan", indent: int | None = None) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_dict(data: Dict, soc, profiler) -> "PipelinePlan":
    """Reconstruct a plan against a (re-)profiled SoC.

    Args:
        data: Output of :func:`plan_to_dict`.
        soc: The target :class:`~repro.hardware.soc.SocSpec`; its name
            must match the stored plan.
        profiler: A :class:`~repro.profiling.profiler.SocProfiler` used
            to attach fresh profiles to the stored placements.

    Raises:
        ValueError: on kind/version/SoC mismatch or invalid slices.
    """
    from ..core.plan import PipelinePlan, StageAssignment
    from .zoo import get_model

    if data.get("kind") != "plan":
        raise ValueError(f"not a plan document: kind={data.get('kind')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    if data["soc"] != soc.name:
        raise ValueError(
            f"plan was made for SoC {data['soc']!r}, not {soc.name!r}"
        )
    stored_procs = list(data["processors"])
    actual_procs = [p.name for p in soc.processors]
    if stored_procs != actual_procs:
        raise ValueError(
            f"processor order mismatch: stored {stored_procs}, "
            f"SoC has {actual_procs}"
        )
    assignments = []
    for request in data["requests"]:
        profile = profiler.profile(get_model(request["model"]))
        slices = [
            None if s is None else (int(s[0]), int(s[1]))
            for s in request["slices"]
        ]
        assignments.append(StageAssignment(profile=profile, slices=slices))
    return PipelinePlan(
        soc=soc,
        processors=tuple(soc.processors),
        assignments=assignments,
        order=tuple(data["order"]),
    )


def plan_from_json(text: str, soc, profiler) -> "PipelinePlan":
    return plan_from_dict(json.loads(text), soc, profiler)
