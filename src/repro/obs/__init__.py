"""``repro.obs`` — observability: spans, metrics, decision provenance.

The planner is a four-stage decision pipeline (Algorithm 1 DP → Eq. 1
contention scoring → Algorithm 2 LAP mitigation → Algorithm 3 work
stealing); this package makes every stage observable without a
debugger:

* **Spans** (:func:`span`): a wall-time span tree of the planner's own
  execution ("how long did mitigation spend in Kuhn-Munkres?").
* **Metrics** (:func:`add` / :func:`observe` / :func:`set_gauge`, all
  flushing through :class:`~repro.obs.metrics.MetricsRegistry`):
  aggregate work counters — DP cells evaluated, LAP assignments,
  boundary layers stolen, 2-High contention windows.
* **Decision provenance** (:func:`emit` + the typed events in
  :mod:`repro.obs.events`): the committed decisions themselves, replayable
  into the final plan (:func:`~repro.obs.provenance.reconstruct_plan`)
  and narratable as a terminal report
  (:func:`~repro.obs.provenance.render_explanation`).
* **Export** (:mod:`repro.obs.export`, merged by
  :func:`repro.runtime.tracing.to_chrome_trace`): everything above in
  one Perfetto/Chrome trace next to the simulated execution.

Everything funnels through one process-global, swappable recorder; the
default :class:`NullRecorder` makes every instrumentation site cost a
global load plus an attribute check.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .accuracy import (
    RequestResidual,
    ResidualReport,
    ResidualSummary,
    SliceResidual,
    join_execution,
    report_from_dict,
    summarize,
)
from .blame import (
    BLAME_COMPONENTS,
    CriticalPath,
    PathSegment,
    RequestBlame,
    aggregate_blame,
    blame_requests,
    compute_slack,
    extract_critical_path,
)
from .drift import CusumDetector, DriftMonitor, EwmaDetector
from .events import (
    EVENT_KINDS,
    DriftDetected,
    LayerStolen,
    OrderCommitted,
    PlacementChanged,
    ProvenanceEvent,
    RequestRelocated,
    SliceChosen,
    SloBurnAlert,
    TailReplaced,
    TimelineDiagnostic,
    event_from_dict,
)
from .export import (
    render_slo_jsonl,
    render_telemetry_jsonl,
    slo_telemetry_rows,
    telemetry_rows,
    write_slo_jsonl,
    write_telemetry_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prof import (
    PROFILE_SCHEMA,
    PhaseProfile,
    PhaseStat,
    ProfilingRecorder,
    SpanStat,
    collapsed_stacks,
    profile_spans,
    profiling_session,
    render_phase_table,
    speedscope_document,
)
from .provenance import reconstruct_plan, render_explanation
from .sketch import QuantileSketch, merge_all
from .slo import (
    SloEvaluator,
    SloSpec,
    SloWindowReport,
    parse_class_specs,
    resolve_request_specs,
)
from .timeline import LittlesLawCheck, TimelineAggregator, WindowStats
from .recorder import (
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    add,
    emit,
    enabled,
    get_recorder,
    observe,
    set_gauge,
    set_recorder,
    span,
    use_recorder,
)
from .spans import NULL_SPAN, NullSpan, Span, set_clock

__all__ = [
    # recorder + fast-path API
    "Recorder",
    "NullRecorder",
    "InMemoryRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "span",
    "emit",
    "add",
    "observe",
    "set_gauge",
    "enabled",
    # spans
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "set_clock",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # provenance
    "ProvenanceEvent",
    "SliceChosen",
    "RequestRelocated",
    "OrderCommitted",
    "LayerStolen",
    "PlacementChanged",
    "TailReplaced",
    "DriftDetected",
    "SloBurnAlert",
    "TimelineDiagnostic",
    "EVENT_KINDS",
    "event_from_dict",
    "reconstruct_plan",
    "render_explanation",
    # streaming telemetry (sketch + timeline + SLO burn rates)
    "QuantileSketch",
    "merge_all",
    "TimelineAggregator",
    "WindowStats",
    "LittlesLawCheck",
    "SloSpec",
    "SloEvaluator",
    "SloWindowReport",
    "parse_class_specs",
    "resolve_request_specs",
    "slo_telemetry_rows",
    "render_slo_jsonl",
    "write_slo_jsonl",
    # causal latency attribution (the what-if counterfactuals live in
    # repro.obs.whatif, above runtime — import it explicitly)
    "BLAME_COMPONENTS",
    "RequestBlame",
    "blame_requests",
    "PathSegment",
    "CriticalPath",
    "extract_critical_path",
    "compute_slack",
    "aggregate_blame",
    # prediction accuracy + drift
    "SliceResidual",
    "RequestResidual",
    "ResidualSummary",
    "ResidualReport",
    "summarize",
    "join_execution",
    "report_from_dict",
    "EwmaDetector",
    "CusumDetector",
    "DriftMonitor",
    "telemetry_rows",
    "render_telemetry_jsonl",
    "write_telemetry_jsonl",
    # self-profiling (software wall time; repro.profiling is the
    # *hardware latency* profiler — see docs/ARCHITECTURE.md)
    "PROFILE_SCHEMA",
    "PhaseProfile",
    "PhaseStat",
    "SpanStat",
    "ProfilingRecorder",
    "profiling_session",
    "profile_spans",
    "render_phase_table",
    "collapsed_stacks",
    "speedscope_document",
]
