"""Tests for the planner hot-path caching layer (core.objective).

Covers the LRU substrate, the plan fingerprint, the memoized objective,
and the planner-level guarantees: cached and uncached planners emit
byte-identical plans over the full zoo x SoC grid, and a repeated
20-request mix stops re-running the event-driven simulation.
"""

import pytest

from repro import obs
from repro.core.objective import LRUCache, ObjectiveCache, plan_fingerprint
from repro.core.plan import PipelinePlan, StageAssignment
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.core.partition import partition_model
from repro.hardware.soc import SOC_NAMES, get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.schedule import async_makespan_ms


def canonical(plan: PipelinePlan):
    """Byte-comparable identity of a plan: everything the executor reads."""
    return (
        plan.soc.name,
        tuple(p.name for p in plan.processors),
        plan.order,
        tuple((a.model_name, tuple(a.slices)) for a in plan.assignments),
    )


def build_plan(soc, names):
    profiler = SocProfiler(soc)
    assignments = []
    for name in names:
        profile = profiler.profile(get_model(name))
        part = partition_model(profile, soc.processors)
        assignments.append(
            StageAssignment(profile=profile, slices=list(part.slices))
        )
    return PipelinePlan(
        soc=soc, processors=tuple(soc.processors), assignments=assignments
    )


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_clear_keeps_accounting(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestPlanFingerprint:
    @pytest.fixture(scope="class")
    def kirin(self):
        return get_soc("kirin990")

    def test_equal_plans_equal_fingerprints(self, kirin):
        a = build_plan(kirin, ["resnet50", "vit"])
        b = build_plan(kirin, ["resnet50", "vit"])
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_slice_change_changes_fingerprint(self, kirin):
        a = build_plan(kirin, ["resnet50"])
        before = plan_fingerprint(a)
        # Move one boundary layer; any slice delta must change the key.
        from repro.core.stealing import move_boundary_layer

        moved = False
        for s in range(a.depth - 1):
            for frm, to in ((s, s + 1), (s + 1, s)):
                if move_boundary_layer(
                    a.assignments[0], frm, to, a.processors
                ):
                    moved = True
                    break
            if moved:
                break
        assert moved
        assert plan_fingerprint(a) != before

    def test_order_changes_fingerprint(self, kirin):
        a = build_plan(kirin, ["resnet50", "vit"])
        b = build_plan(kirin, ["resnet50", "vit"])
        b.order = (1, 0)
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_contention_flag_changes_fingerprint(self, kirin):
        a = build_plan(kirin, ["resnet50"])
        assert plan_fingerprint(a, True) != plan_fingerprint(a, False)


class TestObjectiveCache:
    @pytest.fixture(scope="class")
    def kirin(self):
        return get_soc("kirin990")

    def test_hit_returns_identical_value(self, kirin):
        plan = build_plan(kirin, ["resnet50", "squeezenet"])
        objective = ObjectiveCache()
        first = objective(plan)
        second = objective(plan)
        assert first == second
        assert first == async_makespan_ms(plan)
        assert objective.hits == 1
        assert objective.misses == 1

    def test_mutation_invalidates_naturally(self, kirin):
        plan = build_plan(kirin, ["resnet50"])
        objective = ObjectiveCache()
        objective(plan)
        from repro.core.stealing import move_boundary_layer

        for s in range(plan.depth - 1):
            if move_boundary_layer(
                plan.assignments[0], s, s + 1, plan.processors
            ):
                break
        # New configuration -> new fingerprint -> fresh simulation.
        assert objective(plan) == async_makespan_ms(plan)
        assert objective.misses == 2

    def test_counters_flow_through_obs(self, kirin):
        plan = build_plan(kirin, ["squeezenet"])
        objective = ObjectiveCache()
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            objective(plan)
            objective(plan)
            counters = rec.metrics.snapshot()["counters"]
        assert counters["objective_cache_misses"] == 1
        assert counters["objective_cache_hits"] == 1

    def test_bounded(self, kirin):
        plan = build_plan(kirin, ["squeezenet"])
        objective = ObjectiveCache(maxsize=1)
        objective(plan, True)
        objective(plan, False)  # evicts the first key
        objective(plan, True)
        assert objective.evictions >= 1
        assert objective.misses == 3


MIX = ["yolov4", "bert", "squeezenet", "resnet50", "vit"]


class TestPlannerCacheCorrectness:
    @pytest.mark.parametrize("soc_name", SOC_NAMES)
    def test_cached_equals_uncached_over_full_zoo(self, soc_name):
        """Every zoo model on every SoC: caching must not change plans."""
        soc = get_soc(soc_name)
        models = [get_model(n) for n in MODEL_NAMES]
        cached = Hetero2PipePlanner(soc)  # all caches on by default
        uncached = Hetero2PipePlanner(soc, PlannerConfig.uncached())
        with_cache = cached.plan(models)
        without = uncached.plan(models)
        assert canonical(with_cache.plan) == canonical(without.plan)
        assert with_cache.stealing_moves == without.stealing_moves
        assert with_cache.tail_changed == without.tail_changed
        # Warm re-plan returns the identical plan again.
        warm = cached.plan(models)
        assert canonical(warm.plan) == canonical(without.plan)

    def test_cached_report_is_isolated_from_caller_mutation(self):
        soc = get_soc("kirin990")
        models = [get_model(n) for n in ("resnet50", "vit")]
        planner = Hetero2PipePlanner(soc)
        first = planner.plan(models)
        reference = canonical(first.plan)
        # Vandalize the returned plan; the cache must not see it.
        first.plan.order = tuple(reversed(first.plan.order))
        first.plan.assignments.reverse()
        second = planner.plan(models)
        assert canonical(second.plan) == reference

    def test_repeated_20_request_plan_skips_resimulation(self):
        """Acceptance: re-planning a 20-request mix re-runs zero
        event-driven simulations (the objective_evaluations counter is
        flat) and hits the plan cache."""
        soc = get_soc("kirin990")
        names = ("squeezenet", "mobilenetv2", "alexnet", "googlenet")
        models = [get_model(names[i % len(names)]) for i in range(20)]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            planner = Hetero2PipePlanner(soc)
            first = planner.plan(models)
            cold = rec.metrics.counter("objective_evaluations").value
            assert cold > 0
            second = planner.plan(models)
            warm = rec.metrics.counter("objective_evaluations").value
            counters = rec.metrics.snapshot()["counters"]
        assert warm == cold  # not one more simulation ran
        assert counters["plan_cache_hits"] == 1
        assert canonical(first.plan) == canonical(second.plan)

    def test_objective_cache_reduces_simulations_on_cold_plan(self):
        """Even a single cold plan dedupes re-probed configurations."""
        soc = get_soc("kirin990")
        models = [get_model(n) for n in MIX]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            Hetero2PipePlanner(soc).plan(models)
            with_cache = rec.metrics.counter("objective_evaluations").value
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            Hetero2PipePlanner(soc, PlannerConfig.uncached()).plan(models)
            without = rec.metrics.counter("objective_evaluations").value
        assert with_cache < without

    def test_partition_and_profile_caches_count_hits(self):
        soc = get_soc("kirin990")
        models = [get_model("resnet50"), get_model("resnet50")]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            planner = Hetero2PipePlanner(
                soc, PlannerConfig(enable_plan_cache=False)
            )
            planner.plan(models)
            counters = rec.metrics.snapshot()["counters"]
        # Second resnet50 in the mix reuses both profile and partition.
        assert counters["partition_cache_hits"] >= 1
        assert counters["profile_cache_hits"] >= 1

    def test_streaming_recurring_windows_hit_plan_cache(self):
        from repro.core.online import StreamingPlanner

        soc = get_soc("kirin990")
        stream = [
            get_model(n)
            for n in ("squeezenet", "mobilenetv2") * 3  # 3 identical windows
        ]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            streaming = StreamingPlanner(soc, window_size=2)
            result = streaming.run(stream)
            counters = rec.metrics.snapshot()["counters"]
        assert result.num_requests == 6
        assert counters["plan_cache_hits"] == 2  # windows 2 and 3
