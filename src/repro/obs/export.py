"""Chrome/Perfetto trace-event builders for observability data.

Pure functions from recorder contents to Chrome-tracing ``traceEvents``
dicts.  The merge with the *executor's* slice records happens one layer
up in :func:`repro.runtime.tracing.to_chrome_trace` (runtime may import
obs, never the reverse); this module only knows spans, metrics and flow
arrows.

Only the event phases ``X`` (complete slice), ``M`` (metadata), ``C``
(counter) and ``s``/``f`` (flow start/finish) are ever emitted — the
schema the export tests validate.

Time bases: planner spans are wall time normalized so the earliest root
span starts at ts 0; the executor timeline is simulated time, also
starting at 0.  The two live in separate trace *processes* (pids), so
Perfetto renders them as distinct tracks instead of pretending the
clocks are comparable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .accuracy import ResidualReport
from .blame import CriticalPath, RequestBlame
from .events import DriftDetected, SloBurnAlert
from .metrics import MetricsRegistry
from .slo import SloWindowReport
from .spans import Span
from .timeline import WindowStats

#: pid of the simulated-execution timeline in merged traces.
EXECUTION_PID = 0
#: pid of the planner wall-time timeline in merged traces.
PLANNER_PID = 1

TraceEvent = Dict[str, object]


def process_metadata(pid: int, name: str, sort_index: int = 0) -> List[TraceEvent]:
    """``process_name`` (+ sort index) metadata events for one pid."""
    events: List[TraceEvent] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
    ]
    if sort_index:
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    return events


def thread_metadata(pid: int, tid: int, name: str) -> TraceEvent:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def span_trace_events(
    roots: Sequence[Span],
    pid: int = PLANNER_PID,
    tid: int = 0,
) -> List[TraceEvent]:
    """Flatten span trees into ``X`` events (µs, earliest root at 0)."""
    if not roots:
        return []
    t0 = min(root.start_s for root in roots)
    events: List[TraceEvent] = []
    for root in roots:
        for span in root.walk():
            end_s = span.end_s if span.end_s is not None else span.start_s
            events.append(
                {
                    "name": span.name,
                    "cat": "planner",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": (span.start_s - t0) * 1e6,
                    "dur": max(0.0, (end_s - span.start_s) * 1e6),
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
    events.sort(key=lambda e: e["ts"])  # type: ignore[arg-type, return-value]
    return events


def metric_counter_events(
    registry: MetricsRegistry,
    pid: int = PLANNER_PID,
    ts_us: float = 0.0,
) -> List[TraceEvent]:
    """One ``C`` sample per counter/gauge (final values as tracks)."""
    snap = registry.snapshot()
    events: List[TraceEvent] = []
    for section in ("counters", "gauges"):
        values = snap[section]
        for name, value in values.items():  # type: ignore[union-attr]
            events.append(
                {
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts_us,
                    "args": {"value": value},
                }
            )
    return events


def flow_pair(
    name: str,
    flow_id: int,
    start: Dict[str, float],
    finish: Dict[str, float],
    cat: str = "provenance",
    args: Optional[Dict[str, object]] = None,
) -> List[TraceEvent]:
    """A flow arrow: ``s`` at ``start`` and ``f`` at ``finish``.

    ``start`` / ``finish`` supply ``pid``, ``tid`` and ``ts`` (µs); the
    ts of each endpoint must fall inside an ``X`` slice on that track
    for viewers to bind the arrow.
    """
    base = {"name": name, "cat": cat, "id": flow_id, "args": args or {}}
    s: TraceEvent = dict(base)
    s.update({"ph": "s", **start})
    f: TraceEvent = dict(base)
    f.update({"ph": "f", "bp": "e", **finish})
    return [s, f]


def residual_counter_events(
    reports: Sequence[ResidualReport],
    pid: int = EXECUTION_PID,
    tid: int = 0,
) -> List[TraceEvent]:
    """``C`` counter samples tracking the prediction residual over time.

    One sample per executed slice, anchored at the slice's *actual*
    finish time on the simulated-execution timeline — so the residual
    track lines up under the execution Gantt in Perfetto and a drifting
    run shows as a rising staircase.
    """
    events: List[TraceEvent] = []
    for report in reports:
        for s in sorted(report.slices, key=lambda r: r.finish_ms):
            events.append(
                {
                    "name": "prediction_residual_ms",
                    "cat": "accuracy",
                    "ph": "C",
                    "pid": pid,
                    "tid": tid,
                    "ts": s.finish_ms * 1e3,
                    "args": {"residual_ms": s.residual_ms},
                }
            )
    return events


def telemetry_rows(
    reports: Sequence[ResidualReport],
    drift_events: Sequence[DriftDetected] = (),
) -> List[Dict[str, object]]:
    """Flatten residual reports + drift events into JSONL telemetry rows.

    Every row carries a ``type`` discriminator — ``window_summary``,
    ``slice_residual``, ``request_residual`` or ``drift_detected`` — so
    consumers can stream-filter without schema knowledge.  The schema is
    documented in docs/OBSERVABILITY.md.
    """
    rows: List[Dict[str, object]] = []
    for report in reports:
        rows.extend(report.to_rows())
    for event in drift_events:
        row = event.to_dict()
        row["type"] = "drift_detected"
        rows.append(row)
    return rows


def render_telemetry_jsonl(
    reports: Sequence[ResidualReport],
    drift_events: Sequence[DriftDetected] = (),
) -> str:
    """The telemetry rows as JSONL text (one JSON object per line)."""
    lines = [
        json.dumps(row, sort_keys=True)
        for row in telemetry_rows(reports, drift_events)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_telemetry_jsonl(
    path: str,
    reports: Sequence[ResidualReport],
    drift_events: Sequence[DriftDetected] = (),
) -> int:
    """Write the telemetry JSONL to ``path``; returns the row count."""
    text = render_telemetry_jsonl(reports, drift_events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return 0 if not text else text.count("\n")


def slo_telemetry_rows(
    windows: Sequence[WindowStats],
    slo_reports: Sequence[SloWindowReport] = (),
    alerts: Sequence[SloBurnAlert] = (),
) -> List[Dict[str, object]]:
    """Flatten timeline windows + SLO views + alerts into JSONL rows.

    Same contract as :func:`telemetry_rows`: every row carries a
    ``type`` discriminator — ``window_stats``, ``slo_window`` or
    ``slo_burn_alert`` — so a consumer can stream-filter without
    schema knowledge.
    """
    rows: List[Dict[str, object]] = []
    for window in windows:
        row = window.to_dict()
        row["type"] = "window_stats"
        rows.append(row)
    for report in slo_reports:
        row = report.to_dict()
        row["type"] = "slo_window"
        rows.append(row)
    for alert in alerts:
        row = alert.to_dict()
        row["type"] = "slo_burn_alert"
        rows.append(row)
    return rows


def render_slo_jsonl(
    windows: Sequence[WindowStats],
    slo_reports: Sequence[SloWindowReport] = (),
    alerts: Sequence[SloBurnAlert] = (),
) -> str:
    """The SLO telemetry rows as JSONL text."""
    lines = [
        json.dumps(row, sort_keys=True)
        for row in slo_telemetry_rows(windows, slo_reports, alerts)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_slo_jsonl(
    path: str,
    windows: Sequence[WindowStats],
    slo_reports: Sequence[SloWindowReport] = (),
    alerts: Sequence[SloBurnAlert] = (),
) -> int:
    """Write the SLO telemetry JSONL to ``path``; returns the row count."""
    text = render_slo_jsonl(windows, slo_reports, alerts)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return 0 if not text else text.count("\n")


def timeline_counter_events(
    windows: Sequence[WindowStats],
    pid: int = EXECUTION_PID,
    tid: int = 0,
) -> List[TraceEvent]:
    """``C`` counter tracks from closed timeline windows.

    One sample per window boundary: per-processor utilization (one
    merged multi-series track), the time-averaged queue depth, and
    throughput — anchored on the simulated-execution timeline so they
    line up under the Gantt.
    """
    events: List[TraceEvent] = []
    for window in windows:
        ts_us = window.end_ms * 1e3
        events.append(
            {
                "name": "utilization_frac",
                "cat": "timeline",
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "args": {
                    proc: frac
                    for proc, frac in sorted(
                        window.utilization_frac.items()
                    )
                },
            }
        )
        events.append(
            {
                "name": "queue_depth",
                "cat": "timeline",
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "args": {
                    "mean": window.mean_queue_depth,
                    "end": window.queue_depth_end,
                },
            }
        )
        events.append(
            {
                "name": "throughput_per_s",
                "cat": "timeline",
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": ts_us,
                "args": {"value": window.throughput_per_s},
            }
        )
    return events


def burn_rate_counter_events(
    slo_reports: Sequence[SloWindowReport],
    pid: int = EXECUTION_PID,
    tid: int = 0,
) -> List[TraceEvent]:
    """``C`` burn-rate tracks, one per SLO class, per window boundary."""
    events: List[TraceEvent] = []
    for report in slo_reports:
        events.append(
            {
                "name": f"slo_burn:{report.class_name}",
                "cat": "slo",
                "ph": "C",
                "pid": pid,
                "tid": tid,
                "ts": report.end_ms * 1e3,
                "args": {
                    "fast": report.fast_burn,
                    "slow": report.slow_burn,
                },
            }
        )
    return events


def blame_telemetry_rows(
    requests: Sequence[RequestBlame],
    critical_path: Optional[CriticalPath] = None,
    whatifs: Sequence[object] = (),
) -> List[Dict[str, object]]:
    """Flatten blame output into JSONL rows.

    Same contract as :func:`telemetry_rows`: every row carries a
    ``type`` discriminator — ``request_blame``,
    ``critical_path_segment`` or ``whatif_delta`` — so a consumer can
    stream-filter without schema knowledge.  ``whatifs`` duck-types
    anything with ``to_dict()`` (the
    :class:`repro.obs.whatif.WhatIfReport` rows; typed as ``object``
    so this module stays below ``whatif`` in the layering).
    """
    rows: List[Dict[str, object]] = []
    for blame in requests:
        row = blame.to_dict()
        row["type"] = "request_blame"
        rows.append(row)
    if critical_path is not None:
        for position, segment in enumerate(critical_path.segments):
            row = segment.to_dict()
            row["type"] = "critical_path_segment"
            row["position"] = position
            rows.append(row)
    for report in whatifs:
        row = report.to_dict()  # type: ignore[attr-defined]
        row["type"] = "whatif_delta"
        rows.append(row)
    return rows


def render_blame_jsonl(
    requests: Sequence[RequestBlame],
    critical_path: Optional[CriticalPath] = None,
    whatifs: Sequence[object] = (),
) -> str:
    """The blame telemetry rows as JSONL text."""
    lines = [
        json.dumps(row, sort_keys=True)
        for row in blame_telemetry_rows(requests, critical_path, whatifs)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_blame_jsonl(
    path: str,
    requests: Sequence[RequestBlame],
    critical_path: Optional[CriticalPath] = None,
    whatifs: Sequence[object] = (),
) -> int:
    """Write the blame telemetry JSONL to ``path``; returns the row count."""
    text = render_blame_jsonl(requests, critical_path, whatifs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return 0 if not text else text.count("\n")


def read_telemetry_jsonl(path: str) -> List[Dict[str, object]]:
    """Load telemetry rows back from a JSONL file (blank lines skipped)."""
    rows: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _jsonable(value: object) -> object:
    """Clamp attribute values to JSON-safe primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
