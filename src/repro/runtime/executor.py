"""Plan execution: the adapter between plans and the event engine.

The synchronized-column timetable (:mod:`repro.runtime.schedule`) is the
planner's optimization proxy; this module is the *evaluation* front-end:
it adapts :class:`~repro.core.plan.PipelinePlan` objects (and the
baselines' hand-built chains) onto the discrete-event engine in
:mod:`repro.runtime.engine`, which owns the continuous-time,
piecewise-constant-rate simulation itself.

The core entry point is :func:`simulate_chains`: each request is a
*chain* of tasks (slice, processor) executed in order.  Chains built
from a :class:`~repro.core.plan.PipelinePlan` give the Hetero2Pipe
semantics (stage k on processor k); baselines such as Band build their
own chains with arbitrary per-segment processor choices and are measured
by the identical machinery.

Semantics (implemented by the engine — see its module docstring for the
event taxonomy and the golden-equivalence guarantee vs the pre-engine
loop preserved in :mod:`repro.runtime._legacy_executor`):

* A chain's next task becomes ready when its previous task finishes
  (precedence, Eq. 8) and the request has arrived; each processor runs
  its ready tasks FIFO in request order.
* While a set of slices co-runs, each progresses at rate
  ``1 / (1 + slowdown)`` with the slowdown recomputed from the live
  co-runner set whenever it changes — the dynamic form of Eq. 2's
  ``T^co``.
* A slice's working set is resident while it executes; a task cannot
  start if it would push residency beyond the physical capacity
  (Constraint 6) and instead waits for memory to drain.
* Every event edge is sampled into a trace of bandwidth demand, memory
  use and the DVFS memory frequency the governor would select (Fig. 9).
* Open-loop extras (arrival processes, relative deadlines with drop
  accounting, cancellation/preemption) ride on the engine's event heap
  and are no-ops for the closed-loop plan-evaluation path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..profiling.slowdown import SliceWorkload
from .arrivals import ArrivalsLike
from .engine import (  # noqa: F401  (re-exported: the historical home)
    _EPS,
    ARENA_OVERHEAD_FACTOR,
    ChainTask,
    DiscreteEventEngine,
    Event,
    ExecutionResult,
    TaskRecord,
    TracePoint,
)
from ..hardware.soc import SocSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..core.plan import PipelinePlan

__all__ = [
    "ARENA_OVERHEAD_FACTOR",
    "ChainTask",
    "Event",
    "ExecutionResult",
    "PipelineExecutor",
    "TaskRecord",
    "TracePoint",
    "execute_plan",
    "execute_plan_perturbed",
    "plan_to_chains",
    "replicate_chains",
    "scale_chain_tasks",
    "simulate_chains",
]


def simulate_chains(
    soc: SocSpec,
    chains: Sequence[Sequence[ChainTask]],
    arrivals: ArrivalsLike = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    processor_offline_ms: Optional[Dict[str, float]] = None,
    record: bool = True,
    deadline_ms: Optional[object] = None,
    keep_events: bool = False,
    track_causality: bool = True,
) -> ExecutionResult:
    """Simulate per-request task chains on one SoC.

    A thin adapter over :class:`~repro.runtime.engine.DiscreteEventEngine`
    — one engine instance per call, run to completion.  Argument
    semantics, return type and raised exceptions are the engine's; the
    historical signature (a plain ``arrivals`` sequence, no deadlines)
    behaves exactly as before the refactor.

    Args:
        soc: The platform (contention coupling, memory capacity, DVFS).
        chains: One ordered task chain per request; tasks run strictly
            in chain order, each on its own processor.
        arrivals: Per-request arrival times in ms, an
            :class:`~repro.runtime.arrivals.ArrivalProcess`, or None
            (closed loop: everything arrives at t=0).
        with_contention: Apply dynamic co-execution slowdown.
        enforce_memory: Enforce Constraint 6 (tasks wait for residency).
        trace: Record :class:`TracePoint` samples at event edges.
        processor_offline_ms: Fault injection — processors stop
            accepting *new* tasks at the given times (a running task
            completes); pending tasks bound for an offline unit fall
            back to the best online processor supporting their slice.
        record: Feed the observability recorder (span + execution
            metrics).  The planner's objective function re-simulates
            candidate plans hundreds of times per plan; those internal
            evaluations pass False so ``tasks_executed`` and the
            ``execute`` span describe only real executions.
        deadline_ms: Scalar or per-request relative deadlines; a request
            whose first slice has not started this long after its
            arrival is dropped (see the engine docs).
        keep_events: Keep the processed-event log on the result.
        track_causality: Record per-task
            :class:`~repro.runtime.engine.TaskCausality` rows and the
            co-run inflation matrix (the blame layer's input).

    Returns:
        The :class:`ExecutionResult`.

    Raises:
        ValueError: on arrival-length mismatch, a task whose processor
            is not part of the SoC, or a negative deadline.
        MemoryError: if a single slice alone exceeds the capacity.
        RuntimeError: if the simulation wedges — for valid fault-free
            inputs this cannot happen; with faults it signals that a
            task has no online processor able to run it.
    """
    return DiscreteEventEngine(
        soc,
        chains,
        arrivals=arrivals,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        trace=trace,
        processor_offline_ms=processor_offline_ms,
        deadline_ms=deadline_ms,
        record=record,
        keep_events=keep_events,
        track_causality=track_causality,
    ).run()


def plan_to_chains(plan: "PipelinePlan") -> List[List[ChainTask]]:
    """Adapt a pipeline plan to the chain representation."""
    chains: List[List[ChainTask]] = []
    for i, assignment in enumerate(plan.assignments):
        chain: List[ChainTask] = []
        for k, slc in enumerate(assignment.slices):
            if slc is None:
                continue
            chain.append(
                ChainTask(
                    request=i,
                    proc=plan.processors[k],
                    solo_ms=assignment.stage_time_ms(k, plan.processors),
                    workload=SliceWorkload(
                        profile=assignment.profile,
                        proc=plan.processors[k],
                        start=slc[0],
                        end=slc[1],
                    ),
                    working_set=ARENA_OVERHEAD_FACTOR
                    * assignment.profile.working_set_bytes(slc[0], slc[1]),
                    stage=k,
                )
            )
        chains.append(chain)
    return chains


def replicate_chains(
    chains: Sequence[Sequence[ChainTask]],
    copies: int,
) -> List[List[ChainTask]]:
    """Tile a chain set into ``copies`` back-to-back request rounds.

    Open-loop streaming runs (the ``slo`` verb, the SLO guard) need far
    more requests than a plan has models; this builds fresh
    :class:`ChainTask` instances (engine tasks are mutable — sharing
    them across requests would corrupt ``remaining_ms``) with request
    ids offset by ``round * len(chains)``, matching the arrival order
    of a repeated model mix.

    Raises:
        ValueError: on a non-positive copy count.
    """
    if copies <= 0:
        raise ValueError(f"copies must be >= 1, got {copies}")
    replicated: List[List[ChainTask]] = []
    for round_index in range(copies):
        offset = round_index * len(chains)
        for i, chain in enumerate(chains):
            replicated.append(
                [
                    ChainTask(
                        request=offset + i,
                        proc=task.proc,
                        solo_ms=task.solo_ms,
                        workload=task.workload,
                        working_set=task.working_set,
                        stage=task.stage,
                    )
                    for task in chain
                ]
            )
    return replicated


def scale_chain_tasks(
    chains: Sequence[Sequence[ChainTask]],
    factors: Dict[str, float],
) -> int:
    """Perturbation injection: scale task solo times per processor.

    Multiplies ``solo_ms`` / ``remaining_ms`` of every not-yet-started
    task bound to a processor in ``factors`` (e.g. ``{"gpu": 1.3}`` is
    a +30% slowdown — thermal throttling, an unplanned co-runner).  The
    planner never sees the perturbation, so the executed run diverges
    from its prediction — the scenario the drift detectors exist for.

    Returns:
        The number of tasks scaled.

    Raises:
        ValueError: on a non-positive factor.
    """
    for name, factor in factors.items():
        if factor <= 0:
            raise ValueError(f"factor for {name!r} must be > 0, got {factor}")
    scaled = 0
    for chain in chains:
        for task in chain:
            factor = factors.get(task.proc.name)
            if factor is None:
                continue
            task.solo_ms = task.solo_ms * factor
            task.remaining_ms = task.remaining_ms * factor
            scaled += 1
    return scaled


def execute_plan_perturbed(
    plan: "PipelinePlan",
    factors: Dict[str, float],
    arrivals: ArrivalsLike = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    record: bool = True,
) -> ExecutionResult:
    """Execute a plan with per-processor slowdown factors injected."""
    chains = plan_to_chains(plan)
    scale_chain_tasks(chains, factors)
    return simulate_chains(
        plan.soc,
        chains,
        arrivals=arrivals,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        trace=trace,
        record=record,
    )


class PipelineExecutor:
    """Simulates one :class:`~repro.core.plan.PipelinePlan` end to end."""

    def __init__(
        self,
        plan: "PipelinePlan",
        with_contention: bool = True,
        enforce_memory: bool = True,
        trace: bool = False,
        record: bool = True,
        deadline_ms: Optional[object] = None,
    ):
        self.plan = plan
        self.with_contention = with_contention
        self.enforce_memory = enforce_memory
        self.trace_enabled = trace
        self.record = record
        self.deadline_ms = deadline_ms

    def run(self, arrivals: ArrivalsLike = None) -> ExecutionResult:
        """Simulate the plan (see :func:`simulate_chains`)."""
        return simulate_chains(
            self.plan.soc,
            plan_to_chains(self.plan),
            arrivals=arrivals,
            with_contention=self.with_contention,
            enforce_memory=self.enforce_memory,
            trace=self.trace_enabled,
            record=self.record,
            deadline_ms=self.deadline_ms,
        )


def execute_plan(
    plan: "PipelinePlan",
    arrivals: ArrivalsLike = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    record: bool = True,
    deadline_ms: Optional[object] = None,
) -> ExecutionResult:
    """Convenience wrapper: build an executor and run it."""
    return PipelineExecutor(
        plan,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        trace=trace,
        record=record,
        deadline_ms=deadline_ms,
    ).run(arrivals)
