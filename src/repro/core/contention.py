"""Contention-intensity estimation and High/Low classification (Eq. 1).

The planner must know, for each incoming request, how aggressively it
will contend on the shared memory bus — *without* profiling co-execution
pairs.  Observation 1 (slowdown consistency under fairness-aware memory
controllers) justifies learning a regression from solo-execution PMU
features (IPC, cache-miss rate, stalled-cycles backend) to a scalar
contention intensity.

:class:`ContentionEstimator` fits the ridge regression of Eq. 1 on a
training set of profiled models and then scores new requests from their
perf counters alone.  Scores above a percentile threshold mark a request
High-contention (the paper's H/L split feeding Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..analysis.regression import RidgeModel, fit_ridge
from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.pmu import PerfCounters, ground_truth_intensity, measure_counters
from ..profiling.profiler import ModelProfile, SocProfiler

#: Default percentile above which a request is High contention.
DEFAULT_THRESHOLD_PERCENTILE = 60.0


@dataclass(frozen=True)
class ContentionScore:
    """One request's estimated intensity and its H/L label."""

    model_name: str
    intensity: float
    is_high: bool


class ContentionEstimator:
    """Ridge-regression contention-intensity model (Eq. 1).

    Typical use::

        estimator = ContentionEstimator.fit_from_zoo(soc, models)
        score = estimator.score(profile)        # uses PMU features only
        labels = estimator.classify(profiles)   # H/L split for Algorithm 2
    """

    def __init__(
        self,
        model: RidgeModel,
        threshold_percentile: float = DEFAULT_THRESHOLD_PERCENTILE,
        training_intensities: Sequence[float] = (),
    ) -> None:
        if not 0.0 < threshold_percentile < 100.0:
            raise ValueError("threshold percentile must be in (0, 100)")
        self._model = model
        self._percentile = threshold_percentile
        self._training = tuple(training_intensities)

    @property
    def ridge(self) -> RidgeModel:
        return self._model

    @property
    def threshold(self) -> float:
        """Intensity above which a request is labelled High contention.

        Computed as the configured percentile of the training-set
        predictions, so 'High' means 'high relative to the workload
        population' — the paper's "percentage threshold".
        """
        if not self._training:
            raise ValueError("estimator fitted without training intensities")
        return float(np.percentile(self._training, self._percentile))

    @classmethod
    def fit(
        cls,
        counters: Sequence[PerfCounters],
        intensities: Sequence[float],
        alpha: float = 1.0,
        threshold_percentile: float = DEFAULT_THRESHOLD_PERCENTILE,
    ) -> "ContentionEstimator":
        """Fit from explicit (features, target) pairs.

        Raises:
            ValueError: on length mismatch or fewer than 2 samples.
        """
        if len(counters) != len(intensities):
            raise ValueError("counters and intensities must align")
        if len(counters) < 2:
            raise ValueError("need at least two training samples")
        x = np.array([c.as_features() for c in counters], dtype=float)
        y = np.asarray(intensities, dtype=float)
        ridge = fit_ridge(x, y, alpha=alpha)
        predictions = ridge.predict(x)
        return cls(
            ridge,
            threshold_percentile=threshold_percentile,
            training_intensities=list(np.atleast_1d(predictions)),
        )

    @classmethod
    def fit_from_zoo(
        cls,
        soc: SocSpec,
        models: Sequence[ModelGraph],
        alpha: float = 1.0,
        threshold_percentile: float = DEFAULT_THRESHOLD_PERCENTILE,
        profiler: Optional[SocProfiler] = None,
    ) -> "ContentionEstimator":
        """Fit from solo profiles of a model zoo on one SoC.

        The training target is the ground-truth bus-demand intensity of
        each model's solo run on the Big CPU (the processor whose PMU
        the paper reads); the features are the synthesized counters.

        Args:
            profiler: Profile cache to measure through; pass the
                planner's own :class:`SocProfiler` so the zoo profiles
                are built once and shared (it must be bound to ``soc``).

        Raises:
            ValueError: when ``profiler`` is bound to a different SoC.
        """
        if profiler is None:
            profiler = SocProfiler(soc)
        elif profiler.soc is not soc:
            raise ValueError(
                f"profiler is bound to {profiler.soc.name!r}, "
                f"cannot fit estimator for {soc.name!r}"
            )
        cpu = soc.cpu_big
        counters: List[PerfCounters] = []
        targets: List[float] = []
        for model in models:
            profile = profiler.profile(model)
            counters.append(measure_counters(profile, cpu))
            targets.append(ground_truth_intensity(profile, cpu))
        return cls.fit(
            counters,
            targets,
            alpha=alpha,
            threshold_percentile=threshold_percentile,
        )

    def predict(self, counters: PerfCounters) -> float:
        """Estimated contention intensity from PMU features alone."""
        return float(self._model.predict(counters.as_features()))

    def score(self, profile: ModelProfile) -> ContentionScore:
        """Score one request: measure counters, predict, threshold."""
        cpu = profile.soc.cpu_big
        counters = measure_counters(profile, cpu)
        intensity = self.predict(counters)
        return ContentionScore(
            model_name=profile.model.name,
            intensity=intensity,
            is_high=intensity >= self.threshold,
        )

    def classify(
        self, profiles: Sequence[ModelProfile]
    ) -> List[ContentionScore]:
        """Score a request sequence, preserving order."""
        with obs.span("plan.classify", requests=len(profiles)) as span:
            scores = [self.score(p) for p in profiles]
            if obs.enabled():
                high = sum(1 for s in scores if s.is_high)
                obs.add("requests_scored", len(scores))
                obs.add("requests_high", high)
                for s in scores:
                    obs.observe("contention_intensity", s.intensity)
                span.set(high=high, low=len(scores) - high)
        return scores

    def labels(self, profiles: Sequence[ModelProfile]) -> List[bool]:
        """The H/L boolean sequence Algorithm 2 consumes (True = High)."""
        return [s.is_high for s in self.classify(profiles)]
