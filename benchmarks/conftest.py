"""Shared configuration for the figure/table regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures via
``benchmark.pedantic`` (a single timed round — these are experiment
sweeps, not micro-benchmarks), asserts the shape the paper reports, and
prints the regenerated rows/series.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
