"""Extension experiment: the scheme line-up on realistic applications.

Runs the named scenario catalogue (scene understanding, smart camera,
AR assistant, video conferencing, offline photo batch) through every
scheme, reporting latency, the gap to the contention-free theoretical
lower bound, and per-request responsiveness for the streaming
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.bounds import makespan_lower_bounds
from ..core.planner import Hetero2PipePlanner
from ..baselines.band import execute_band
from ..baselines.mnn_serial import plan_mnn_serial
from ..hardware.soc import SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.scenarios import Scenario, all_scenarios
from .common import format_table


@dataclass(frozen=True)
class ScenarioRow:
    """One scenario's outcome across schemes."""

    scenario: str
    num_requests: int
    mnn_ms: float
    band_ms: float
    h2p_ms: float
    lower_bound_ms: float

    @property
    def speedup_vs_mnn(self) -> float:
        return self.mnn_ms / self.h2p_ms

    @property
    def gap_to_bound(self) -> float:
        return self.h2p_ms / self.lower_bound_ms - 1.0


def run(
    soc: Optional[SocSpec] = None,
    scenarios: Optional[Sequence[Scenario]] = None,
) -> List[ScenarioRow]:
    """Evaluate every scenario on one SoC."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    rows: List[ScenarioRow] = []
    for scenario in scenarios or all_scenarios():
        models = scenario.models()
        mnn = execute_plan(plan_mnn_serial(soc, models, profiler)).makespan_ms
        band = execute_band(soc, models, profiler).makespan_ms
        h2p = execute_plan(planner.plan(models).plan).makespan_ms
        bounds = makespan_lower_bounds(soc, models, profiler)
        rows.append(
            ScenarioRow(
                scenario=scenario.name,
                num_requests=scenario.num_requests,
                mnn_ms=mnn,
                band_ms=band,
                h2p_ms=h2p,
                lower_bound_ms=bounds.lower_bound_ms,
            )
        )
    return rows


def render(rows: Sequence[ScenarioRow]) -> str:
    headers = [
        "scenario", "reqs", "mnn_ms", "band_ms", "h2p_ms",
        "bound_ms", "speedup", "gap_to_bound",
    ]
    body = [
        [
            r.scenario,
            r.num_requests,
            r.mnn_ms,
            r.band_ms,
            r.h2p_ms,
            r.lower_bound_ms,
            round(r.speedup_vs_mnn, 2),
            f"{r.gap_to_bound * 100:.0f}%",
        ]
        for r in rows
    ]
    return format_table(headers, body)


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
