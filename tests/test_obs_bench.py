"""Tests for the unified bench harness (``repro.obs.bench``)."""

import json

import pytest

from repro.obs import bench


class TestTimers:
    def test_time_call_s(self):
        calls = []
        elapsed = bench.time_call_s(lambda: calls.append(1))
        assert calls == [1]
        assert elapsed >= 0.0

    def test_best_of_s_runs_n_times(self):
        calls = []
        best = bench.best_of_s(4, lambda: calls.append(1))
        assert len(calls) == 4
        assert best >= 0.0

    def test_best_of_s_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            bench.best_of_s(0, lambda: None)

    def test_collect_samples_ms(self):
        calls = {"timed": 0, "warm": 0, "setup": 0}

        def fn():
            calls["timed"] += 1

        samples = bench.collect_samples_ms(
            fn, rounds=3, warmup=2, setup=lambda: calls.__setitem__(
                "setup", calls["setup"] + 1
            )
        )
        assert len(samples) == 3
        # Warmup rounds also run setup; warmup calls are untimed.
        assert calls["timed"] == 5
        assert calls["setup"] == 5

    def test_percentile_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert bench.percentile_ms(samples, 0) == 10.0
        assert bench.percentile_ms(samples, 50) == 20.0
        assert bench.percentile_ms(samples, 100) == 40.0
        with pytest.raises(ValueError):
            bench.percentile_ms([], 50)


class TestSchema:
    def test_bench_row_shape(self):
        row = bench.bench_row(
            "cold_plan",
            "kirin990",
            [12.0, 10.0, 14.0],
            phases={"objective": 8.0},
            counters={"plan_cache_hits": 1.0},
            attributed_frac=0.97,
        )
        assert row["rounds"] == 3
        assert row["min_ms"] == 10.0
        assert row["p50_ms"] == 12.0
        assert row["max_ms"] == 14.0
        assert row["mean_ms"] == pytest.approx(12.0)
        assert row["tolerance_frac"] == bench.DEFAULT_TOLERANCE_FRAC
        assert row["abs_slack_ms"] == bench.DEFAULT_ABS_SLACK_MS
        assert row["phases_exclusive_ms"] == {"objective": 8.0}
        assert row["attributed_frac"] == 0.97
        assert row["counters"] == {"plan_cache_hits": 1.0}

    def test_bench_row_needs_samples(self):
        with pytest.raises(ValueError):
            bench.bench_row("x", "kirin990", [])

    def test_bench_doc_shape_and_order(self):
        doc = bench.bench_doc(
            [
                bench.bench_row("b", "soc2", [1.0]),
                bench.bench_row("a", "soc1", [2.0]),
            ]
        )
        assert doc["schema"] == bench.BENCH_SCHEMA
        assert {"python", "platform", "machine", "cpu_count"} <= set(
            doc["environment"]
        )
        keys = [(r["scenario"], r["soc"]) for r in doc["results"]]
        assert keys == sorted(keys)
        json.dumps(doc)  # JSON-ready

    def test_read_write_round_trip(self, tmp_path):
        doc = bench.bench_doc([bench.bench_row("a", "s", [1.0])])
        path = str(tmp_path / "bench.json")
        bench.write_bench_json(path, doc)
        assert bench.read_bench_json(path) == doc

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(ValueError):
            bench.read_bench_json(str(path))


class TestBaselineGate:
    def _docs(self, current_min, baseline_min, **baseline_extra):
        current = bench.bench_doc(
            [bench.bench_row("cold_plan", "kirin990", [current_min])]
        )
        row = bench.bench_row("cold_plan", "kirin990", [baseline_min])
        row.update(baseline_extra)
        return current, bench.bench_doc([row])

    def test_within_band_passes(self):
        current, baseline = self._docs(100.0, 90.0)
        (comp,) = bench.compare_to_baseline(current, baseline)
        assert not comp.regressed
        assert comp.ratio_x == pytest.approx(100.0 / 90.0)

    def test_beyond_band_regresses(self):
        current, baseline = self._docs(
            100.0, 10.0, tolerance_frac=0.5, abs_slack_ms=1.0
        )
        (comp,) = bench.compare_to_baseline(current, baseline)
        assert comp.regressed
        assert comp.limit_ms == pytest.approx(10.0 * 1.5 + 1.0)
        assert bench.regressions([comp]) == [comp]

    def test_tolerance_override(self):
        current, baseline = self._docs(
            100.0, 10.0, tolerance_frac=100.0, abs_slack_ms=0.0
        )
        (comp,) = bench.compare_to_baseline(
            current, baseline, tolerance_frac=0.1
        )
        assert comp.regressed

    def test_new_row_is_ungated(self):
        current = bench.bench_doc([bench.bench_row("brand_new", "s", [9.9])])
        baseline = bench.bench_doc([])
        (comp,) = bench.compare_to_baseline(current, baseline)
        assert not comp.regressed
        assert comp.baseline_min_ms is None
        assert "new" in bench.render_comparison([comp])

    def test_baseline_subset_is_usable(self):
        # Baseline rows not re-run are ignored (scenario subsets).
        current = bench.bench_doc([bench.bench_row("a", "s", [1.0])])
        baseline = bench.bench_doc(
            [
                bench.bench_row("a", "s", [1.0]),
                bench.bench_row("b", "s", [1.0]),
            ]
        )
        comparisons = bench.compare_to_baseline(current, baseline)
        assert len(comparisons) == 1

    def test_render_comparison_flags_regression(self):
        current, baseline = self._docs(
            100.0, 10.0, tolerance_frac=0.5, abs_slack_ms=1.0
        )
        text = bench.render_comparison(
            bench.compare_to_baseline(current, baseline)
        )
        assert "REGRESSED" in text


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            bench.run_bench(scenarios=["nope"], rounds=1)

    def test_single_cell_run_shape(self):
        doc = bench.run_bench(
            scenarios=["executor_sim"], socs=["kirin990"], rounds=1
        )
        (row,) = doc["results"]
        assert row["scenario"] == "executor_sim"
        assert row["soc"] == "kirin990"
        assert row["rounds"] == 1
        assert row["min_ms"] > 0.0
        assert "phases_exclusive_ms" in row
        json.dumps(doc)

    def test_warm_replan_hits_the_plan_cache(self):
        doc = bench.run_bench(
            scenarios=["warm_replan"], socs=["kirin990"], rounds=1
        )
        (row,) = doc["results"]
        counters = row["counters"]
        assert counters["plan_cache_hits"] >= 1
        # A warm re-plan never re-runs the event-driven simulation.
        assert counters.get("objective_evaluations", 0) == 0

    def test_cold_plan_attribution_recorded(self):
        doc = bench.run_bench(
            scenarios=["cold_plan"], socs=["kirin990"], rounds=1
        )
        (row,) = doc["results"]
        assert row["attributed_frac"] >= 0.90

    def test_progress_callback(self):
        seen = []
        bench.run_bench(
            scenarios=["executor_sim"], socs=["kirin990"], rounds=1,
            progress=seen.append,
        )
        assert seen == ["executor_sim on kirin990"]

    def test_default_matrix_covers_all(self):
        # Names only — don't run the full matrix in unit tests.
        assert set(bench.SCENARIO_NAMES) == {
            "cold_plan", "warm_replan", "streaming_window",
            "drift_replan", "executor_sim",
        }


class TestCliVerbs:
    def test_bench_json_verb(self, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--scenarios", "executor_sim", "--socs", "kirin990",
             "--rounds", "1", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == bench.BENCH_SCHEMA

    def test_bench_gate_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        baseline = str(tmp_path / "BENCH_test.json")
        args = ["bench", "--scenarios", "executor_sim", "--socs",
                "kirin990", "--rounds", "1", "--baseline", baseline]
        assert main(args + ["--update-baseline"]) == 0
        assert bench.read_bench_json(baseline)["schema"] == bench.BENCH_SCHEMA
        capsys.readouterr()
        assert main(args) == 0
        assert "ok (" in capsys.readouterr().out

    def test_bench_missing_baseline_errors(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--scenarios", "executor_sim", "--socs", "kirin990",
             "--rounds", "1", "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2

    def test_profile_json_verb(self, capsys):
        from repro.cli import main
        from repro.obs import prof

        code = main(
            ["profile", "--soc", "kirin990", "--models",
             "squeezenet,resnet50", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == prof.PROFILE_SCHEMA
        assert doc["attributed_frac"] >= 0.90
        assert "objective" in doc["phases"]

    def test_profile_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        speedscope = tmp_path / "p.speedscope.json"
        collapsed = tmp_path / "p.collapsed.txt"
        trace = tmp_path / "p.trace.json"
        code = main(
            ["profile", "--soc", "kirin990", "--models", "squeezenet",
             "--speedscope", str(speedscope),
             "--collapsed", str(collapsed), "--trace", str(trace)]
        )
        assert code == 0
        ss = json.loads(speedscope.read_text())
        assert ss["$schema"].startswith("https://www.speedscope.app")
        assert collapsed.read_text().strip()
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(
            str(e.get("name", "")).startswith("phase:") for e in events
        )
