"""Tests for contention scoring (Eq. 1) and contention windows (Def. 4)."""

import numpy as np
import pytest

from repro.core.contention import ContentionEstimator
from repro.core.window import (
    conflicting_high_pairs,
    deficit,
    high_positions,
    is_mitigated,
    iter_windows,
    violating_windows,
    window_bounds,
    window_high_count,
)
from repro.hardware.soc import get_soc
from repro.models.zoo import all_models, get_model
from repro.profiling.pmu import PerfCounters, ground_truth_intensity
from repro.profiling.profiler import SocProfiler


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def estimator(kirin):
    return ContentionEstimator.fit_from_zoo(kirin, all_models())


class TestEstimator:
    def test_prediction_tracks_ground_truth(self, kirin, estimator):
        profiler = SocProfiler(kirin)
        preds, truths = [], []
        for model in all_models():
            profile = profiler.profile(model)
            preds.append(estimator.score(profile).intensity)
            truths.append(ground_truth_intensity(profile, kirin.cpu_big))
        corr = np.corrcoef(preds, truths)[0, 1]
        assert corr > 0.8, f"regression too weak: r={corr:.2f}"

    def test_classification_splits_population(self, kirin, estimator):
        profiler = SocProfiler(kirin)
        labels = estimator.labels(
            [profiler.profile(m) for m in all_models()]
        )
        assert any(labels) and not all(labels)

    def test_alexnet_is_high_contention(self, kirin, estimator):
        # Observation 2: FC-heavy AlexNet tops the demand ranking.
        profiler = SocProfiler(kirin)
        score = estimator.score(profiler.profile(get_model("alexnet")))
        assert score.is_high

    def test_squeezenet_scores_above_vit(self, kirin, estimator):
        # Observation 3: the lightweight outlier.
        profiler = SocProfiler(kirin)
        sq = estimator.score(profiler.profile(get_model("squeezenet")))
        vit = estimator.score(profiler.profile(get_model("vit")))
        assert sq.intensity > vit.intensity

    def test_fit_validates_inputs(self):
        counters = [PerfCounters(1.0, 0.1, 0.2)]
        with pytest.raises(ValueError):
            ContentionEstimator.fit(counters, [0.5])  # too few samples
        with pytest.raises(ValueError):
            ContentionEstimator.fit(counters * 3, [0.5, 0.6])  # mismatch

    def test_threshold_percentile_validated(self, kirin):
        from repro.analysis.regression import fit_ridge

        ridge = fit_ridge(np.eye(3), np.ones(3))
        with pytest.raises(ValueError):
            ContentionEstimator(ridge, threshold_percentile=0.0)

    def test_threshold_requires_training_data(self):
        from repro.analysis.regression import fit_ridge

        ridge = fit_ridge(np.eye(3), np.ones(3))
        estimator = ContentionEstimator(ridge)
        with pytest.raises(ValueError):
            _ = estimator.threshold

    def test_predict_from_counters_directly(self, estimator):
        value = estimator.predict(PerfCounters(2.0, 0.05, 0.3))
        assert np.isfinite(value)


class TestWindows:
    def test_window_bounds_clipped_at_end(self):
        assert window_bounds(3, 4, 5) == (3, 4)

    def test_window_bounds_full(self):
        assert window_bounds(0, 3, 10) == (0, 2)

    def test_invalid_anchor(self):
        with pytest.raises(ValueError):
            window_bounds(5, 2, 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            window_bounds(0, 0, 5)

    def test_iter_windows_count(self):
        assert len(iter_windows(6, 3)) == 6

    def test_high_positions(self):
        assert high_positions([True, False, True]) == [0, 2]

    def test_window_high_count(self):
        labels = [True, False, True, False]
        assert window_high_count(labels, 0, 3) == 2
        assert window_high_count(labels, 1, 3) == 1

    def test_violating_windows(self):
        labels = [True, True, False, False, False]
        assert 0 in violating_windows(labels, 2)
        assert violating_windows([True, False, False, True], 2) == []

    def test_conflicting_pairs(self):
        labels = [True, False, True, False, True]
        assert conflicting_high_pairs(labels, 3) == [(0, 2), (2, 4)]
        assert conflicting_high_pairs(labels, 2) == []

    def test_deficit(self):
        assert deficit((0, 2), 4) == 2
        assert deficit((0, 4), 4) == 0

    def test_deficit_unordered_pair(self):
        with pytest.raises(ValueError):
            deficit((3, 3), 4)

    def test_is_mitigated(self):
        assert is_mitigated([True, False, False, True], 3)
        assert not is_mitigated([True, False, True], 3)
