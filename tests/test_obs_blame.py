"""Tests for the causal-attribution layer: wait-state accounting,
exact critical paths, what-if counterfactuals, the ``blame`` CLI verb
(``hetero2pipe.blame.v1``), the v2 run archive and the event-sweep
``concurrency_profile`` rewrite."""

import json

import pytest

from repro.cli import main
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs.blame import (
    BLAME_COMPONENTS,
    aggregate_blame,
    blame_requests,
    compute_slack,
    extract_critical_path,
)
from repro.obs.export import blame_telemetry_rows, write_blame_jsonl
from repro.obs.timeline import TimelineAggregator
from repro.obs.whatif import (
    WhatIf,
    parse_whatif,
    parse_whatifs,
    results_identical,
    run_counterfactual,
    run_whatifs,
)
from repro.runtime.arrivals import PoissonArrivals, resolve_arrivals
from repro.runtime.engine import (
    CAUSE_ARRIVAL,
    CAUSE_FORCED,
    CAUSE_KINDS,
    CAUSE_PREDECESSOR,
    CAUSE_PROCESSOR_FREED,
    CAUSE_RESIDENCY_DRAIN,
    ChainTask,
    DiscreteEventEngine,
)
from repro.runtime.executor import (
    plan_to_chains,
    replicate_chains,
    simulate_chains,
)
from repro.runtime.replay import (
    RUN_SCHEMA,
    RUN_SCHEMA_V1,
    concurrency_profile,
    critical_chain,
    load_run,
    run_from_dict,
    run_to_dict,
    save_run,
)
from repro.runtime.tracing import to_chrome_trace

RESIDUE = 1e-9


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def small_plan(kirin):
    models = [get_model(n) for n in ("squeezenet", "mobilenetv2", "resnet50")]
    return Hetero2PipePlanner(kirin).plan(models).plan


def _task(soc, request, solo_ms, proc_idx=0, working_set=0.0):
    return ChainTask(
        request=request,
        proc=soc.processors[proc_idx],
        solo_ms=solo_ms,
        workload=None,
        working_set=working_set,
    )


def _assert_identities(result):
    """Every request residue-free; critical path tiles [0, makespan]."""
    requests = blame_requests(result)
    for r in requests:
        assert abs(r.residue_ms) <= RESIDUE, (r.request, r.residue_ms)
    path = extract_critical_path(result)
    assert abs(path.residue_ms) <= RESIDUE
    if result.records:
        assert path.segments
    return requests, path


class TestWaitAccountingIdentity:
    def test_closed_loop_plan(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        requests, _ = _assert_identities(result)
        assert {r.status for r in requests} == {"completed"}
        # Closed loop: a never-queued request has zero first-stage wait.
        assert any(r.first_stage_wait_ms == 0.0 for r in requests)

    def test_open_loop_poisson_with_drops(self, kirin, small_plan):
        chains = replicate_chains(plan_to_chains(small_plan), 4)
        result = simulate_chains(
            kirin,
            chains,
            arrivals=PoissonArrivals(interval_ms=3.0, seed=3),
            deadline_ms=25.0,
            record=False,
        )
        requests, _ = _assert_identities(result)
        dropped = [r for r in requests if r.status == "dropped"]
        assert dropped, "deadline was not tight enough to exercise drops"
        # A dropped request is blamed up to its drop time: pure wait.
        for r in dropped:
            assert r.solo_ms == 0.0
            assert r.latency_ms == pytest.approx(
                r.processor_busy_wait_ms
                + r.residency_wait_ms
                + r.scheduler_wait_ms
            )

    def test_queued_request_blames_processor(self, kirin):
        chains = [[_task(kirin, 0, 10.0)], [_task(kirin, 1, 5.0)]]
        result = simulate_chains(kirin, chains, record=False)
        requests, _ = _assert_identities(result)
        assert requests[1].processor_busy_wait_ms == pytest.approx(10.0)
        assert requests[1].latency_ms == pytest.approx(15.0)
        [row] = [c for c in result.causality if c.request == 1]
        assert row.cause == CAUSE_PROCESSOR_FREED
        assert row.enabled_by == (0, 0)

    def test_residency_wait_cause(self, kirin):
        cap = kirin.memory_capacity_bytes
        chains = [
            [_task(kirin, 0, 10.0, proc_idx=0, working_set=0.7 * cap)],
            [_task(kirin, 1, 10.0, proc_idx=1, working_set=0.6 * cap)],
        ]
        result = simulate_chains(kirin, chains, record=False)
        requests, _ = _assert_identities(result)
        assert requests[1].residency_wait_ms == pytest.approx(10.0)
        [row] = [c for c in result.causality if c.request == 1]
        assert row.cause == CAUSE_RESIDENCY_DRAIN
        assert row.enabled_by == (0, 0)

    def test_forced_overcommit_wedge(self, kirin):
        # The engine's overcommit escape hatch (_force_start_blocked)
        # must surface as a `forced` cause and keep the identity exact.
        cap = kirin.memory_capacity_bytes
        chains = [
            [
                _task(kirin, 0, 10.0, proc_idx=0, working_set=0.7 * cap),
                _task(kirin, 0, 10.0, proc_idx=1, working_set=0.4 * cap),
            ]
        ]
        result = simulate_chains(kirin, chains, record=False)
        assert result.memory_pressure_events == 1
        requests, _ = _assert_identities(result)
        second = [c for c in result.causality if c.index == 1]
        assert [c.cause for c in second] == [CAUSE_FORCED]
        # The overcommit fires in the same scheduling pass that detects
        # the wedge, so no wall time is lost to the block.
        assert requests[0].latency_ms == pytest.approx(20.0)
        assert requests[0].solo_ms == pytest.approx(20.0)

    def test_cancellation_identity(self, kirin):
        chains = [[_task(kirin, 0, 50.0)], [_task(kirin, 1, 10.0)]]
        engine = DiscreteEventEngine(kirin, chains, record=False)
        engine.schedule_cancellation(0, 20.0)
        result = engine.run()
        requests, _ = _assert_identities(result)
        by_req = {r.request: r for r in requests}
        assert by_req[0].status == "cancelled"
        # The truncated slice counts only its executed progress.
        assert by_req[0].solo_ms == pytest.approx(20.0)
        # Request 1 was enabled by the cancellation freeing the cpu.
        [row] = [c for c in result.causality if c.request == 1]
        assert row.cause == CAUSE_PROCESSOR_FREED
        assert row.enabled_by == (0, 0)

    def test_preemption_identity(self, kirin):
        # Request 1 is running when it is preempted; request 0 (lower
        # id, queued since t=5) steals the freed processor, so request 1
        # accrues genuine preempted time before resuming.
        chains = [[_task(kirin, 0, 5.0)], [_task(kirin, 1, 50.0)]]
        engine = DiscreteEventEngine(
            kirin, chains, arrivals=[5.0, 0.0], record=False
        )
        engine.schedule_preemption(1, 10.0)
        result = engine.run()
        requests, _ = _assert_identities(result)
        by_req = {r.request: r for r in requests}
        assert by_req[1].preempted_ms == pytest.approx(5.0)
        assert by_req[1].solo_ms == pytest.approx(50.0)
        assert by_req[1].latency_ms == pytest.approx(55.0)

    def test_causality_off_is_empty_and_blame_raises(self, kirin, small_plan):
        result = simulate_chains(
            kirin,
            plan_to_chains(small_plan),
            record=False,
            track_causality=False,
        )
        assert result.causality == []
        with pytest.raises(ValueError, match="causality"):
            blame_requests(result)

    def test_causality_does_not_perturb_simulation(self, kirin, small_plan):
        with_rows = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        without = simulate_chains(
            kirin,
            plan_to_chains(small_plan),
            record=False,
            track_causality=False,
        )
        assert [
            (r.request, r.stage, r.start_ms, r.finish_ms)
            for r in with_rows.records
        ] == [
            (r.request, r.stage, r.start_ms, r.finish_ms)
            for r in without.records
        ]
        assert with_rows.makespan_ms == without.makespan_ms

    def test_cause_kinds_are_closed(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        assert {c.cause for c in result.causality} <= set(CAUSE_KINDS)
        roots = [c for c in result.causality if c.index == 0]
        assert all(
            c.cause in (CAUSE_ARRIVAL, CAUSE_PROCESSOR_FREED, CAUSE_FORCED)
            for c in roots
        )
        later = [c for c in result.causality if c.index > 0]
        assert any(c.cause == CAUSE_PREDECESSOR for c in later) or not later


class TestCriticalPathAndSlack:
    def test_path_tiles_makespan(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        path = extract_critical_path(result)
        assert path.makespan_ms == result.makespan_ms
        total = path.total_gap_ms + path.total_duration_ms
        assert total == pytest.approx(result.makespan_ms, abs=RESIDUE)
        # Segments are contiguous: each starts where the previous ended.
        cursor = 0.0
        for seg in path.segments:
            start = seg.start_ms if seg.start_ms is not None else seg.finish_ms
            assert start == pytest.approx(cursor + seg.gap_ms, abs=RESIDUE)
            cursor = seg.finish_ms

    def test_path_tasks_have_zero_slack(self, kirin, small_plan):
        chains = replicate_chains(plan_to_chains(small_plan), 2)
        result = simulate_chains(
            kirin,
            chains,
            arrivals=PoissonArrivals(interval_ms=5.0, seed=1),
            record=False,
        )
        path = extract_critical_path(result)
        slack = compute_slack(result)
        for seg in path.segments:
            assert slack[(seg.request, seg.index)] == pytest.approx(
                0.0, abs=1e-6
            )
        # Slack is never negative and some off-path task has room.
        assert all(s >= -1e-9 for s in slack.values())

    def test_critical_chain_shim_prefers_exact(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        exact_records = critical_chain(result)
        path = extract_critical_path(result)
        assert [(r.request, r.stage) for r in exact_records] == [
            (s.request, s.stage)
            for s in path.segments
            if s.start_ms is not None
        ]
        # The forced heuristic still walks a non-empty chain ending at
        # the makespan.
        heuristic = critical_chain(result, prefer_exact=False)
        assert heuristic
        assert heuristic[-1].finish_ms == pytest.approx(result.makespan_ms)


class TestAggregateAndTimelineAgreement:
    def test_aggregate_blame_tables(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        agg = aggregate_blame(result, request_models=["a", "b", "c"])
        assert set(agg) == {
            "by_processor",
            "by_model",
            "by_stage",
            "corun_pairs",
        }
        assert set(agg["by_model"]) <= {"a", "b", "c"}
        for row in agg["by_processor"].values():
            assert set(row) == set(BLAME_COMPONENTS)
        # The directional inflation matrix matches the engine's totals.
        pair_total = sum(p["inflation_ms"] for p in agg["corun_pairs"])
        assert pair_total == pytest.approx(
            sum(result.corun_inflation_ms.values())
        )

    def test_blame_totals_agree_with_timeline(self, kirin, small_plan):
        # The busy time the timeline fold integrates per processor must
        # equal the blame layer's executed solo + inflation (they are
        # two independent accountings of the same engine run).
        chains = replicate_chains(plan_to_chains(small_plan), 2)
        engine = DiscreteEventEngine(
            kirin,
            chains,
            arrivals=PoissonArrivals(interval_ms=10.0, seed=2),
            keep_events=True,
            record=False,
        )
        result = engine.run()
        stages = [len(chain) for chain in chains]
        timeline = TimelineAggregator(
            [p.name for p in kirin.processors], stages, 25.0
        )
        windows = []
        for event in result.events:
            windows.extend(timeline.observe(event))
        windows.extend(timeline.finish(result.makespan_ms))

        timeline_busy = {}
        for w in windows:
            span = w.end_ms - w.start_ms
            for proc, frac in w.utilization_frac.items():
                timeline_busy[proc] = timeline_busy.get(proc, 0.0) + frac * span

        agg = aggregate_blame(result)
        for proc, row in agg["by_processor"].items():
            blame_busy = (
                row["solo_ms"] + row["contention_ms"]
            )
            assert timeline_busy.get(proc, 0.0) == pytest.approx(
                blame_busy, abs=1e-6
            ), proc
            assert result.processor_busy_ms[proc] == pytest.approx(
                blame_busy, abs=1e-6
            )


class TestWhatIf:
    def test_parse_specs(self):
        specs = parse_whatifs("scale:gpu:1.5,no-contention,drop:2")
        assert [w.kind for w in specs] == [
            "scale_processor",
            "no_contention",
            "drop_request",
        ]
        assert specs[0].processor == "gpu"
        assert specs[0].factor == 1.5
        assert specs[2].request == 2
        assert parse_whatif("unlimited-memory").label == "unlimited-memory"

    @pytest.mark.parametrize(
        "bad",
        ["scale:gpu", "scale:gpu:0", "scale:gpu:x", "drop:x", "bogus", ""],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ValueError):
            parse_whatif(bad)

    def test_baseline_is_bit_exact(self, kirin, small_plan):
        chains = replicate_chains(plan_to_chains(small_plan), 2)
        arrivals = resolve_arrivals(
            len(chains), PoissonArrivals(interval_ms=8.0, seed=5)
        )
        original = simulate_chains(
            kirin, chains, arrivals=arrivals, record=False
        )
        # chains are now mutated (consumed); clones must still match.
        replayed, request_map = run_counterfactual(
            kirin, chains, WhatIf(kind="baseline"), arrivals=arrivals
        )
        assert request_map == {i: i for i in range(len(chains))}
        assert results_identical(original, replayed)

    def test_scale_processor_speeds_up(self, kirin):
        chains = [[_task(kirin, 0, 10.0)], [_task(kirin, 1, 10.0)]]
        baseline, reports = run_whatifs(
            kirin, chains, [parse_whatif("scale:npu:2")]
        )
        [report] = reports
        assert report.intervention == "scale:npu:2"
        assert report.makespan_ms < baseline.makespan_ms
        assert report.delta_makespan_ms < 0.0

    def test_drop_request_renumbers(self, kirin, small_plan):
        chains = plan_to_chains(small_plan)
        variant, request_map = run_counterfactual(
            kirin, chains, parse_whatif("drop:0")
        )
        assert 0 not in request_map
        assert sorted(request_map.values()) == list(
            range(len(chains) - 1)
        )
        assert variant.num_requests == len(chains) - 1

    def test_no_contention_removes_inflation(self, kirin, small_plan):
        chains = plan_to_chains(small_plan)
        variant, _ = run_counterfactual(
            kirin, chains, parse_whatif("no-contention")
        )
        assert sum(variant.corun_inflation_ms.values()) == 0.0

    def test_scale_requires_valid_factor(self, kirin, small_plan):
        with pytest.raises(ValueError):
            run_counterfactual(
                kirin,
                plan_to_chains(small_plan),
                WhatIf(kind="scale_processor", processor="gpu", factor=0.0),
            )


class TestExportAndArchive:
    def _run(self, kirin, small_plan):
        return simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )

    def test_blame_jsonl_rows(self, kirin, small_plan, tmp_path):
        result = self._run(kirin, small_plan)
        requests = blame_requests(result)
        path = extract_critical_path(result)
        _, reports = run_whatifs(
            kirin,
            plan_to_chains(small_plan),
            [parse_whatif("no-contention")],
        )
        rows = blame_telemetry_rows(requests, path, reports)
        kinds = {row["type"] for row in rows}
        assert kinds == {
            "request_blame",
            "critical_path_segment",
            "whatif_delta",
        }
        out = tmp_path / "blame.jsonl"
        count = write_blame_jsonl(str(out), requests, path, reports)
        lines = out.read_text().splitlines()
        assert len(lines) == count == len(rows)
        assert all(json.loads(line)["type"] in kinds for line in lines)

    def test_run_archive_v2_roundtrip(self, kirin, small_plan, tmp_path):
        result = self._run(kirin, small_plan)
        blame = blame_requests(result)
        target = tmp_path / "run.json"
        save_run(str(target), result, blame=blame)
        archive = load_run(str(target))
        loaded, residuals, drift = archive  # historical 3-tuple unpack
        assert residuals == [] and drift == []
        assert loaded.makespan_ms == result.makespan_ms
        assert len(loaded.causality) == len(result.causality)
        assert loaded.causality[0].cause == result.causality[0].cause
        assert loaded.corun_inflation_ms == result.corun_inflation_ms
        assert [b.to_dict() for b in archive.blame] == [
            b.to_dict() for b in blame
        ]
        with open(target, encoding="utf-8") as fh:
            assert json.load(fh)["schema"] == RUN_SCHEMA

    def test_run_archive_accepts_v1(self, kirin, small_plan):
        result = self._run(kirin, small_plan)
        doc = run_to_dict(result)
        doc["schema"] = RUN_SCHEMA_V1
        # v1 documents had none of the v2 sections.
        for key in ("windows", "blame", "causality", "corun_inflation_ms"):
            doc.pop(key, None)
        archive = run_from_dict(doc)
        assert archive.result.makespan_ms == result.makespan_ms
        assert archive.result.causality == []
        assert archive.windows == [] and archive.blame == []

    def test_run_archive_rejects_unknown_schema(self, kirin, small_plan):
        doc = run_to_dict(self._run(kirin, small_plan))
        doc["schema"] = "hetero2pipe.run.v99"
        with pytest.raises(ValueError, match="schema"):
            run_from_dict(doc)

    def test_blame_trace_view(self, kirin, small_plan):
        result = self._run(kirin, small_plan)
        doc = json.loads(to_chrome_trace(result, blame=True))
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "M", "C", "s", "f"}
        crit = [
            e for e in events if e.get("args", {}).get("critical_path")
        ]
        assert crit and all(e["cname"] == "terrible" for e in crit)
        waits = [e for e in events if e.get("cat") == "blame"]
        assert waits
        assert {e["cname"] for e in waits} <= {
            "thread_state_runnable",
            "thread_state_iowait",
            "grey",
            "yellow",
        }
        # Default stays untouched: no blame events, no colors.
        plain = json.loads(to_chrome_trace(result))["traceEvents"]
        assert not any(e.get("cat") == "blame" for e in plain)
        assert not any("cname" in e for e in plain)


class TestConcurrencyProfileSweep:
    def test_matches_bruteforce_reference(self, kirin, small_plan):
        chains = replicate_chains(plan_to_chains(small_plan), 2)
        result = simulate_chains(
            kirin,
            chains,
            arrivals=PoissonArrivals(interval_ms=6.0, seed=4),
            record=False,
        )
        for samples in (1, 7, 50):
            profile = concurrency_profile(result, samples=samples)
            assert len(profile) == samples
            for t, active in profile:
                reference = sum(
                    1
                    for r in result.records
                    if r.start_ms <= t < r.finish_ms
                )
                assert active == reference, (t, active, reference)

    def test_rejects_bad_sample_count(self, kirin, small_plan):
        result = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        with pytest.raises(ValueError):
            concurrency_profile(result, samples=0)


class TestBlameCli:
    BLAME_ARGS = [
        "blame",
        "--soc", "kirin990",
        "--models", "squeezenet,mobilenetv2",
        "--repeat", "2",
        "--arrivals", "poisson",
        "--interval-ms", "15",
        "--arrival-seed", "2",
        "--whatif", "scale:gpu:2,no-contention",
    ]

    def test_json_schema_v1(self, capsys):
        assert main(self.BLAME_ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.blame.v1"
        assert sorted(doc) == [
            "aggregates",
            "arrival_process",
            "blame",
            "critical_path",
            "identity",
            "makespan_ms",
            "models",
            "repeat",
            "requests",
            "schema",
            "soc",
            "whatifs",
        ]
        assert doc["identity"]["worst_request_residue_ms"] <= RESIDUE
        assert abs(doc["identity"]["critical_path_residue_ms"]) <= RESIDUE
        assert len(doc["blame"]) == doc["requests"] == 4
        assert doc["critical_path"]["segments"]
        assert [w["intervention"] for w in doc["whatifs"]] == [
            "scale:gpu:2",
            "no-contention",
        ]

    def test_text_and_artifacts(self, capsys, tmp_path):
        jsonl = tmp_path / "blame.jsonl"
        trace = tmp_path / "trace.json"
        assert (
            main(
                self.BLAME_ARGS
                + ["--jsonl", str(jsonl), "--trace", str(trace)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worst accounting residue" in out
        assert "critical path:" in out
        assert "what-if scale:gpu:2" in out
        assert jsonl.read_text().strip()
        assert json.loads(trace.read_text())["traceEvents"]

    def test_bad_whatif_spec_is_usage_error(self, capsys):
        assert main(self.BLAME_ARGS[:-1] + ["scale:gpu:nope"]) == 2
        assert "scale" in capsys.readouterr().err
