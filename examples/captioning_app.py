#!/usr/bin/env python3
"""The complete intro application, extended zoo + trace visualization.

Plans the paper's full motivating stack — YOLOv4 detection, FaceNet and
Age/GenderNet recognition, ViT-GPT2 captioning — using the *extended*
model zoo (FaceNet, Age/GenderNet and the GPT-2 decoder are extension
models beyond the evaluation ten), renders the executed schedule as an
ASCII Gantt chart and exports a Chrome trace you can open in
chrome://tracing or Perfetto.

Run:
    python examples/captioning_app.py [trace.json]
"""

import sys

from repro import Hetero2PipePlanner, execute_plan, get_model, get_soc
from repro.hardware import estimate_energy
from repro.models.zoo_extended import register_extended_models
from repro.runtime.tracing import ascii_gantt, write_chrome_trace

#: The intro's app: detect -> recognize faces -> age/gender -> caption.
APP_STACK = ("yolov4", "facenet", "agegendernet", "vit", "gpt2")


def main() -> None:
    register_extended_models()
    soc = get_soc("kirin990")
    models = [get_model(name) for name in APP_STACK]

    planner = Hetero2PipePlanner(soc)
    report = planner.plan(models)
    result = execute_plan(report.plan)
    ordered_names = [APP_STACK[i] for i in report.plan.order]

    print(f"scene captioning app on {soc.name}: "
          f"{result.makespan_ms:.1f} ms per scene, "
          f"{result.throughput_per_s:.1f} model-inferences/s\n")

    print(ascii_gantt(result, ordered_names))

    energy = estimate_energy(result, soc)
    print(f"\nenergy: {energy.total_mj:.0f} mJ per scene "
          f"({energy.dram_mj:.0f} mJ of it DRAM traffic)")
    for proc in soc.processors:
        print(f"  {proc.name:10s} active {energy.active_mj[proc.name]:7.1f} mJ"
              f"   idle {energy.idle_mj[proc.name]:6.1f} mJ")

    if len(sys.argv) > 1:
        write_chrome_trace(result, sys.argv[1], ordered_names)
        print(f"\nChrome trace written to {sys.argv[1]} "
              "(open in chrome://tracing)")


if __name__ == "__main__":
    main()
