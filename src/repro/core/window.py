"""Contention windows (Definition 4) over a request sequence.

On a K-deep pipeline, the slices of request ``j`` temporally overlap
with requests ``j+1 .. j+K-1`` (they occupy the same execution diagonals).
The *contention window* of request ``j`` therefore spans ``[j, j+K-1]``;
two High-contention requests closer than K positions apart will co-run
at some point and interfere.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def window_bounds(position: int, k: int, length: int) -> Tuple[int, int]:
    """Inclusive bounds of the contention window anchored at ``position``.

    Raises:
        ValueError: for invalid anchors or window size.
    """
    if k < 1:
        raise ValueError("window size K must be >= 1")
    if not 0 <= position < length:
        raise ValueError(f"anchor {position} out of range [0, {length})")
    return position, min(position + k - 1, length - 1)


def iter_windows(length: int, k: int) -> List[Tuple[int, int]]:
    """All contention windows of a length-``length`` sequence."""
    return [window_bounds(j, k, length) for j in range(length)]


def high_positions(labels: Sequence[bool]) -> List[int]:
    """Indices of High-contention requests."""
    return [i for i, is_high in enumerate(labels) if is_high]


def window_high_count(labels: Sequence[bool], position: int, k: int) -> int:
    """Number of High requests inside the window anchored at ``position``."""
    lo, hi = window_bounds(position, k, len(labels))
    return sum(1 for i in range(lo, hi + 1) if labels[i])


def violating_windows(labels: Sequence[bool], k: int) -> List[int]:
    """Anchors of windows holding two or more High requests.

    These are the temporal overlaps Algorithm 2 must break up.
    """
    return [
        j
        for j in range(len(labels))
        if window_high_count(labels, j, k) >= 2
    ]


def conflicting_high_pairs(
    labels: Sequence[bool], k: int
) -> List[Tuple[int, int]]:
    """Consecutive High pairs closer than K apart (Property 3's (u, v)).

    For each such pair the mitigation must interleave ``K - d`` Low
    requests, where ``d = v - u`` is the contention distance.
    """
    highs = high_positions(labels)
    return [
        (u, v)
        for u, v in zip(highs, highs[1:])
        if v - u < k
    ]


def deficit(pair: Tuple[int, int], k: int) -> int:
    """Number of Low requests needed between a conflicting pair.

    Property 3: with contention distance ``d = v - u``, at least
    ``K - d`` Low requests must move in between.
    """
    u, v = pair
    if v <= u:
        raise ValueError(f"pair must be ordered, got {pair}")
    return max(0, k - (v - u))


def is_mitigated(labels: Sequence[bool], k: int) -> bool:
    """Whether no window holds two or more High requests."""
    return not conflicting_high_pairs(labels, k)
