"""Fig. 1 / Fig. 11: solo model latency on each heterogeneous processor.

Reproduces the motivating measurement: per-model inference latency on
the NPU, CPU Big cluster, GPU and CPU Small cluster, with the NPU
erroring on models containing unsupported operators (YOLOv4, BERT).

Expected shape (the paper's observations):

* NPU is the fastest where it runs at all;
* CPU Big is generally on par with the OpenCL GPU;
* CPU Small is several times slower than Big;
* YOLOv4 and BERT report errors on the NPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import MODEL_NAMES, get_model
from ..profiling.profiler import SocProfiler
from .common import format_table


@dataclass(frozen=True)
class LatencyRow:
    """One model's solo latency per processor (None = unsupported)."""

    model: str
    latency_ms: Dict[str, Optional[float]]


def run(
    soc: Optional[SocSpec] = None,
    model_names: Sequence[str] = MODEL_NAMES,
) -> List[LatencyRow]:
    """Measure every model on every processor of one SoC."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    rows: List[LatencyRow] = []
    for name in model_names:
        profile = profiler.profile(get_model(name))
        latencies: Dict[str, Optional[float]] = {}
        for proc in soc.processors:
            value = profile.whole_model_ms(proc)
            latencies[proc.name] = None if math.isinf(value) else value
        rows.append(LatencyRow(model=name, latency_ms=latencies))
    return rows


def render(rows: List[LatencyRow], soc: Optional[SocSpec] = None) -> str:
    """ASCII rendering of the Fig. 1 bar chart's underlying numbers."""
    soc = soc or get_soc("kirin990")
    headers = ["model"] + [p.name for p in soc.processors]
    body = []
    for row in rows:
        cells: List[object] = [row.model]
        for proc in soc.processors:
            value = row.latency_ms.get(proc.name)
            cells.append("ERR" if value is None else value)
        body.append(cells)
    return format_table(headers, body)


def render_chart(rows: List[LatencyRow]) -> str:
    """Fig. 1's bar-chart form: one grouped panel per model."""
    from ..analysis.charts import grouped_bar_chart

    groups = []
    for row in rows:
        items = [
            (proc, value if value is not None else 0.0)
            for proc, value in row.latency_ms.items()
        ]
        groups.append((row.model, items))
    return grouped_bar_chart(groups, width=40, unit=" ms")


def main() -> str:
    rows = run()
    return render(rows) + "\n\n" + render_chart(rows)


if __name__ == "__main__":
    print(main())
