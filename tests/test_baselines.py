"""Tests for the baseline scheme implementations."""

import pytest

from repro.baselines.annealing import AnnealingConfig, anneal_plan
from repro.baselines.band import (
    execute_band,
    plan_band,
    segment_by_npu_support,
)
from repro.baselines.exhaustive import candidate_assignments, exhaustive_plan
from repro.baselines.mnn_serial import plan_mnn_serial, serial_latency_ms
from repro.baselines.pipe_it import local_search_split, plan_pipe_it
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan
from repro.runtime.schedule import async_makespan_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


MIXED = ["yolov4", "bert", "squeezenet", "vit"]


class TestMnnSerial:
    def test_everything_on_cpu_big(self, kirin, profiler):
        plan = plan_mnn_serial(kirin, [get_model(n) for n in MIXED], profiler)
        cpu_stage = [
            k for k, p in enumerate(plan.processors) if p.name == "cpu_big"
        ][0]
        for assignment in plan.assignments:
            occupied = [
                k for k, s in enumerate(assignment.slices) if s is not None
            ]
            assert occupied == [cpu_stage]

    def test_execution_is_serial_sum(self, kirin, profiler):
        models = [get_model(n) for n in MIXED]
        plan = plan_mnn_serial(kirin, models, profiler)
        result = execute_plan(plan)
        assert result.makespan_ms == pytest.approx(
            serial_latency_ms(kirin, models, profiler), rel=1e-6
        )

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            plan_mnn_serial(kirin, [])


class TestPipeIt:
    def test_split_balances_or_stays_on_big(self, kirin, profiler):
        for name in MIXED:
            profile = profiler.profile(get_model(name))
            cut, makespan = local_search_split(profile, kirin)
            whole_big = profile.whole_model_ms(kirin.cpu_big)
            assert makespan <= whole_big + 1e-9
            if cut is not None:
                assert 1 <= cut < profile.model.num_layers

    def test_plan_uses_two_cpu_stages(self, kirin, profiler):
        plan = plan_pipe_it(kirin, [get_model(n) for n in MIXED], profiler)
        assert [p.name for p in plan.processors] == ["cpu_big", "cpu_small"]
        plan.validate()

    def test_executes(self, kirin, profiler):
        plan = plan_pipe_it(kirin, [get_model(n) for n in MIXED], profiler)
        result = execute_plan(plan)
        assert result.makespan_ms > 0

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            plan_pipe_it(kirin, [])


class TestBand:
    def test_segmentation_of_supported_model(self):
        segments = segment_by_npu_support(get_model("vit"))
        assert len(segments) == 1
        assert segments[0].npu_supported

    def test_segmentation_of_bert(self):
        segments = segment_by_npu_support(get_model("bert"))
        # embedding + encoders unsupported, pooler supported.
        assert any(not s.npu_supported for s in segments)
        total = sum(s.end - s.start + 1 for s in segments)
        assert total == get_model("bert").num_layers

    def test_segments_are_contiguous(self):
        for name in MIXED:
            segments = segment_by_npu_support(get_model(name))
            expected = 0
            for seg in segments:
                assert seg.start == expected
                expected = seg.end + 1

    def test_band_never_places_unsupported_on_npu(self, kirin, profiler):
        mapping = plan_band(kirin, [get_model(n) for n in MIXED], profiler)
        for chain, model_name in zip(mapping.chains, MIXED):
            model = get_model(model_name)
            for task in chain:
                if task.proc.name == "npu":
                    assert task.workload is not None
                    layers = model.layers[
                        task.workload.start : task.workload.end + 1
                    ]
                    assert all(l.npu_supported() for l in layers)

    def test_band_spreads_over_processors(self, kirin, profiler):
        # With enough identical requests the NPU queue exceeds the CPU's
        # solo latency and EFT starts spilling onto other processors.
        mapping = plan_band(
            kirin, [get_model("resnet50")] * 12, profiler
        )
        used = {
            task.proc.name for chain in mapping.chains for task in chain
        }
        assert len(used) >= 2

    def test_band_beats_serial(self, kirin, profiler):
        models = [get_model(n) for n in MIXED]
        band = execute_band(kirin, models, profiler).makespan_ms
        serial = serial_latency_ms(kirin, models, profiler)
        assert band < serial

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            plan_band(kirin, [])


class TestExhaustive:
    def test_candidates_include_dp_and_singles(self, kirin, profiler):
        profile = profiler.profile(get_model("vit"))
        options = candidate_assignments(profile, tuple(kirin.processors))
        assert len(options) >= 2
        for option in options:
            option.validate()

    def test_exhaustive_at_least_matches_h2p(self, kirin, profiler):
        models = [get_model(n) for n in ["vit", "resnet50", "squeezenet"]]
        planner = Hetero2PipePlanner(kirin)
        h2p = async_makespan_ms(planner.plan(models).plan)
        _, best = exhaustive_plan(kirin, models, profiler)
        assert best <= h2p * 1.05  # exhaustive+polish is the reference

    def test_too_large_instance_rejected(self, kirin, profiler):
        import repro.baselines.exhaustive as ex

        old = ex.MAX_CANDIDATES
        ex.MAX_CANDIDATES = 2
        try:
            with pytest.raises(ValueError):
                exhaustive_plan(
                    kirin, [get_model("vit")] * 3, profiler
                )
        finally:
            ex.MAX_CANDIDATES = old

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            exhaustive_plan(kirin, [])


class TestAnnealing:
    def test_annealing_returns_valid_plan(self, kirin, profiler):
        models = [get_model(n) for n in MIXED]
        plan, cost = anneal_plan(
            kirin, models, profiler, AnnealingConfig(steps=60, seed=1)
        )
        plan.validate()
        assert cost == pytest.approx(async_makespan_ms(plan))

    def test_annealing_never_worse_than_start(self, kirin, profiler):
        from repro.baselines.annealing import _initial_plan

        models = [get_model(n) for n in MIXED]
        start = async_makespan_ms(_initial_plan(kirin, models, profiler))
        _, cost = anneal_plan(
            kirin, models, profiler, AnnealingConfig(steps=80, seed=3)
        )
        assert cost <= start + 1e-6

    def test_deterministic_for_fixed_seed(self, kirin, profiler):
        models = [get_model(n) for n in ["vit", "resnet50"]]
        config = AnnealingConfig(steps=40, seed=9)
        _, a = anneal_plan(kirin, models, profiler, config)
        _, b = anneal_plan(kirin, models, profiler, config)
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnnealingConfig(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingConfig(steps=0)

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            anneal_plan(kirin, [])
