"""Fig. 2: motivation — queueing under serial execution, resource demands.

(a) Queueing delay accumulates when a stream of multi-DNN requests is
    served serially on the CPU Big cores; heterogeneous execution keeps
    the backlog near zero.
(b) Per-model resource demands (IPC, cache-miss rate, backend stalls)
    ranked by the Eq. 1 contention intensity, exposing the lightweight
    outliers of Observation 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.contention import ContentionEstimator
from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import MODEL_NAMES, all_models, get_model
from ..profiling.pmu import measure_counters
from ..profiling.profiler import SocProfiler
from ..runtime.queueing import QueueingReport, heterogeneous_queueing, serial_queueing
from ..workloads.generator import arrival_times_ms
from .common import format_table

#: The default request stream of Fig. 2a: a mixed loop of four models.
DEFAULT_STREAM = (
    "resnet50", "googlenet", "mobilenetv2", "inceptionv4",
    "resnet50", "squeezenet", "googlenet", "resnet50",
    "mobilenetv2", "inceptionv4", "squeezenet", "resnet50",
)


@dataclass(frozen=True)
class QueueingComparison:
    """Fig. 2a data: both configurations on the same arrival schedule."""

    serial: QueueingReport
    heterogeneous: QueueingReport


def run_queueing(
    soc: Optional[SocSpec] = None,
    stream: Sequence[str] = DEFAULT_STREAM,
    interval_ms: float = 60.0,
) -> QueueingComparison:
    """Run the Fig. 2a experiment on one SoC."""
    soc = soc or get_soc("kirin990")
    models = [get_model(name) for name in stream]
    arrivals = arrival_times_ms(len(models), interval_ms)
    return QueueingComparison(
        serial=serial_queueing(soc, models, arrivals),
        heterogeneous=heterogeneous_queueing(soc, models, arrivals),
    )


@dataclass(frozen=True)
class DemandRow:
    """Fig. 2b data: one model's perf events and estimated intensity."""

    model: str
    ipc: float
    cache_miss_rate: float
    stalled_backend: float
    intensity: float


def run_demands(soc: Optional[SocSpec] = None) -> List[DemandRow]:
    """Rank all models by estimated contention intensity (Fig. 2b)."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    estimator = ContentionEstimator.fit_from_zoo(soc, all_models())
    rows: List[DemandRow] = []
    for name in MODEL_NAMES:
        profile = profiler.profile(get_model(name))
        counters = measure_counters(profile, soc.cpu_big)
        rows.append(
            DemandRow(
                model=name,
                ipc=counters.ipc,
                cache_miss_rate=counters.cache_miss_rate,
                stalled_backend=counters.stalled_backend,
                intensity=estimator.predict(counters),
            )
        )
    rows.sort(key=lambda r: r.intensity, reverse=True)
    return rows


def render_queueing(comparison: QueueingComparison) -> str:
    headers = ["request", "arrival", "serial_delay", "hetero_delay"]
    serial = comparison.serial.queueing_delay_ms
    hetero = comparison.heterogeneous.queueing_delay_ms
    body = [
        [i, comparison.serial.arrival_ms[i], serial[i], hetero[i]]
        for i in range(len(serial))
    ]
    return format_table(headers, body)


def render_demands(rows: List[DemandRow]) -> str:
    headers = ["model", "ipc", "miss_rate", "stalled", "intensity"]
    body = [
        [r.model, r.ipc, round(r.cache_miss_rate, 3), r.stalled_backend, round(r.intensity, 3)]
        for r in rows
    ]
    return format_table(headers, body)


def main() -> str:
    comparison = run_queueing()
    demands = run_demands()
    return (
        "Fig. 2(a) queueing delay (ms):\n"
        + render_queueing(comparison)
        + "\n\nFig. 2(b) resource demands ranked by contention intensity:\n"
        + render_demands(demands)
    )


if __name__ == "__main__":
    print(main())
