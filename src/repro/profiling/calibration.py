"""Calibration of the latency model against measured device latencies.

The paper profiles real phones; anyone adapting this reproduction to a
new device will have a handful of measured whole-model latencies and
needs the simulated SoC to match them.  This module fits one
multiplicative throughput scale per processor (equivalently, scaling
``peak_gflops``) by minimizing squared log-error against the provided
measurements — log-error because latencies span orders of magnitude and
multiplicative fit quality is what matters for planning decisions.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.zoo import get_model
from .profiler import ModelProfile, SocProfiler


@dataclass(frozen=True)
class CalibrationTarget:
    """One measured data point: a model's solo latency on a processor."""

    model_name: str
    processor_name: str
    latency_ms: float

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("measured latency must be positive")


@dataclass(frozen=True)
class CalibrationReport:
    """Fit outcome: per-processor scales and before/after errors."""

    scales: Dict[str, float]
    rms_log_error_before: float
    rms_log_error_after: float

    @property
    def improved(self) -> bool:
        return self.rms_log_error_after <= self.rms_log_error_before + 1e-12


def _rms_log_error(pairs: Sequence[Tuple[float, float]]) -> float:
    if not pairs:
        return 0.0
    total = sum(math.log(pred / meas) ** 2 for pred, meas in pairs)
    return math.sqrt(total / len(pairs))


def _scaled_processor(proc: ProcessorSpec, scale: float) -> ProcessorSpec:
    return dataclasses.replace(proc, peak_gflops=proc.peak_gflops * scale)


def _predictions(
    soc: SocSpec, targets: Sequence[CalibrationTarget]
) -> List[Tuple[float, float]]:
    profiler = SocProfiler(soc)
    pairs = []
    for target in targets:
        profile = profiler.profile(get_model(target.model_name))
        proc = soc.processor(target.processor_name)
        predicted = profile.whole_model_ms(proc)
        if math.isinf(predicted):
            raise ValueError(
                f"{target.model_name!r} cannot run on "
                f"{target.processor_name!r}; bad calibration target"
            )
        pairs.append((predicted, target.latency_ms))
    return pairs


def _fit_scale(
    soc: SocSpec,
    proc_name: str,
    targets: Sequence[CalibrationTarget],
    lo: float = 0.2,
    hi: float = 5.0,
    iterations: int = 40,
) -> float:
    """Golden-section search for one processor's throughput scale."""
    relevant = [t for t in targets if t.processor_name == proc_name]
    if not relevant:
        return 1.0

    def error(scale: float) -> float:
        trial = dataclasses.replace(
            soc,
            processors=tuple(
                _scaled_processor(p, scale) if p.name == proc_name else p
                for p in soc.processors
            ),
        )
        return _rms_log_error(_predictions(trial, relevant))

    phi = (math.sqrt(5) - 1) / 2
    a, b = math.log(lo), math.log(hi)
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = error(math.exp(c)), error(math.exp(d))
    for _ in range(iterations):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = error(math.exp(c))
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = error(math.exp(d))
    return math.exp((a + b) / 2)


def calibrate(
    soc: SocSpec, targets: Sequence[CalibrationTarget]
) -> Tuple[SocSpec, CalibrationReport]:
    """Fit per-processor throughput scales to measured latencies.

    Args:
        soc: The starting SoC spec.
        targets: Measured (model, processor, latency) triples; at least
            one per processor you want calibrated.

    Returns:
        ``(calibrated_soc, report)``.  Processors without targets keep
        their original throughput.

    Raises:
        ValueError: on empty targets or a target whose model cannot run
            on the named processor.
    """
    if not targets:
        raise ValueError("need at least one calibration target")
    before = _rms_log_error(_predictions(soc, targets))

    scales: Dict[str, float] = {}
    processors = []
    for proc in soc.processors:
        scale = _fit_scale(soc, proc.name, targets)
        scales[proc.name] = scale
        processors.append(_scaled_processor(proc, scale))
    calibrated = dataclasses.replace(soc, processors=tuple(processors))

    after = _rms_log_error(_predictions(calibrated, targets))
    return calibrated, CalibrationReport(
        scales=scales,
        rms_log_error_before=before,
        rms_log_error_after=after,
    )
